use dna::{Base, PackedSeq};

use crate::{minimizer_of_kmer, MspError, Result, Superkmer};

/// Number of bytes [`encode_superkmer`] produces for a core of
/// `core_len` bases: a 3-byte header plus 2-bit packed bases.
///
/// The 2-bit packing is the paper's I/O optimisation: roughly ¼ of the
/// byte-per-base representation, which shrinks both the partition files on
/// disk and the host↔device transfers.
pub fn encoded_len(core_len: usize) -> usize {
    3 + core_len.div_ceil(4)
}

/// Serialises a superkmer into `out` (appending) in the compact partition
/// file format:
///
/// | bytes | content |
/// |---|---|
/// | 0–1 | core length in bases, little-endian `u16` |
/// | 2 | flags: bit 0 = has left ext, bit 1 = has right ext, bits 2–3 = left base code, bits 4–5 = right base code |
/// | 3… | core bases, 2-bit packed, 4 per byte, LSB-first |
///
/// The minimizer is *not* stored: every k-mer of the superkmer shares it,
/// so the decoder recomputes it from the first k-mer, and partition
/// membership is implied by the file the record lives in.
///
/// # Panics
///
/// Panics if the core exceeds 65 535 bases (no realistic read is close).
pub fn encode_superkmer(sk: &Superkmer, out: &mut Vec<u8>) {
    let core = sk.core();
    let len = u16::try_from(core.len()).expect("superkmer core exceeds u16 length");
    out.extend_from_slice(&len.to_le_bytes());
    let mut flags = 0u8;
    if let Some(b) = sk.left_ext() {
        flags |= 1 | (b.code() << 2);
    }
    if let Some(b) = sk.right_ext() {
        flags |= 2 | (b.code() << 4);
    }
    out.push(flags);
    let mut byte = 0u8;
    for (i, b) in core.bases().enumerate() {
        byte |= b.code() << (2 * (i % 4));
        if i % 4 == 3 {
            out.push(byte);
            byte = 0;
        }
    }
    if !core.len().is_multiple_of(4) {
        out.push(byte);
    }
}

/// Serialises the superkmer covering k-mer positions `first..=last` of
/// `read` directly into `out`, byte-identical to running
/// [`encode_superkmer`] on the owned [`Superkmer`] for the same run —
/// but with **zero intermediate allocation**: the core's 2-bit payload is
/// bit-shifted straight out of the read's packed words
/// ([`PackedSeq::write_packed_range`]), and no `Superkmer`/`PackedSeq`
/// slice is ever materialised. This is Step 1's emit primitive.
///
/// `left_ext`/`right_ext` are the adjacency extension bases; callers
/// scanning a whole read derive them as `read[first−1]` / `read[last+k]`
/// when those positions exist (see [`crate::SuperkmerScanner`]).
///
/// # Examples
///
/// ```
/// use dna::PackedSeq;
/// use msp::{encode_superkmer, encode_superkmer_slice, SuperkmerScanner};
///
/// # fn main() -> msp::Result<()> {
/// let read = PackedSeq::from_ascii(b"TGATGGATGAACCAGTTTGA");
/// let scanner = SuperkmerScanner::new(5, 3)?;
/// let mut owned = Vec::new();
/// let mut borrowed = Vec::new();
/// let mut first = 0usize;
/// for sk in scanner.scan(&read) {
///     encode_superkmer(&sk, &mut owned);
///     let last = first + sk.kmer_count() - 1;
///     encode_superkmer_slice(&read, first, last, 5, sk.left_ext(), sk.right_ext(), &mut borrowed);
///     first = last + 1;
/// }
/// assert_eq!(owned, borrowed);
/// # Ok(())
/// # }
/// ```
///
/// # Panics
///
/// Panics if the run does not fit the read (`last + k > read.len()` or
/// `first > last`) or the core exceeds 65 535 bases.
pub fn encode_superkmer_slice(
    read: &PackedSeq,
    first: usize,
    last: usize,
    k: usize,
    left_ext: Option<Base>,
    right_ext: Option<Base>,
    out: &mut Vec<u8>,
) {
    assert!(first <= last, "empty superkmer run {first}..={last}");
    let core_len = last - first + k;
    let len = u16::try_from(core_len).expect("superkmer core exceeds u16 length");
    out.extend_from_slice(&len.to_le_bytes());
    let mut flags = 0u8;
    if let Some(b) = left_ext {
        flags |= 1 | (b.code() << 2);
    }
    if let Some(b) = right_ext {
        flags |= 2 | (b.code() << 4);
    }
    out.push(flags);
    read.write_packed_range(first, core_len, out);
}

/// Deserialises one superkmer from the front of `bytes`, returning it and
/// the number of bytes consumed. `k` and `p` are the partitioning
/// parameters the file was written with (recorded in the manifest).
///
/// # Errors
///
/// Returns [`MspError::CorruptRecord`] if `bytes` is too short for the
/// header or the declared payload, or if the core cannot hold one k-mer.
/// `offset` is reported relative to the start of `bytes`; callers add
/// their own file offset.
pub fn decode_superkmer(bytes: &[u8], k: usize, p: usize) -> Result<(Superkmer, usize)> {
    if bytes.len() < 3 {
        return Err(MspError::CorruptRecord {
            offset: 0,
            reason: format!("{} bytes left, header needs 3", bytes.len()),
        });
    }
    let core_len = u16::from_le_bytes([bytes[0], bytes[1]]) as usize;
    let flags = bytes[2];
    let payload = core_len.div_ceil(4);
    let total = 3 + payload;
    if bytes.len() < total {
        return Err(MspError::CorruptRecord {
            offset: 0,
            reason: format!("payload of {payload} bytes truncated to {}", bytes.len() - 3),
        });
    }
    if core_len < k {
        return Err(MspError::CorruptRecord {
            offset: 0,
            reason: format!("core of {core_len} bases cannot hold a {k}-mer"),
        });
    }
    let mut core = PackedSeq::with_capacity(core_len);
    for i in 0..core_len {
        let b = bytes[3 + i / 4] >> (2 * (i % 4));
        core.push(Base::from_code(b));
    }
    let left_ext = (flags & 1 != 0).then(|| Base::from_code(flags >> 2));
    let right_ext = (flags & 2 != 0).then(|| Base::from_code(flags >> 4));
    let minimizer = minimizer_of_kmer(&core.kmer_at(0, k).expect("core_len >= k"), p);
    Ok((Superkmer::new(core, minimizer, k, left_ext, right_ext), total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SuperkmerScanner;

    fn superkmers(read: &str, k: usize, p: usize) -> Vec<Superkmer> {
        SuperkmerScanner::new(k, p).unwrap().scan(&PackedSeq::from_ascii(read.as_bytes()))
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let sks = superkmers("TGATGGATGAACCAGTTTGAGGCATTAGGCAT", 5, 3);
        assert!(sks.len() >= 2);
        for sk in &sks {
            let mut buf = Vec::new();
            encode_superkmer(sk, &mut buf);
            assert_eq!(buf.len(), encoded_len(sk.core().len()));
            let (back, used) = decode_superkmer(&buf, 5, 3).unwrap();
            assert_eq!(used, buf.len());
            assert_eq!(&back, sk);
        }
    }

    #[test]
    fn roundtrip_concatenated_stream() {
        let sks = superkmers("ACGTTGCATGGACCAGTTACGGATCAGGCATTAGCCAGT", 7, 4);
        let mut buf = Vec::new();
        for sk in &sks {
            encode_superkmer(sk, &mut buf);
        }
        let mut offset = 0;
        let mut decoded = Vec::new();
        while offset < buf.len() {
            let (sk, used) = decode_superkmer(&buf[offset..], 7, 4).unwrap();
            decoded.push(sk);
            offset += used;
        }
        assert_eq!(decoded, sks);
    }

    #[test]
    fn encoding_is_compact() {
        // ~¼ of byte-per-base, the paper's claim for the encoded output.
        let sks = superkmers(&"ACGT".repeat(64), 21, 11);
        for sk in &sks {
            let text_size = sk.core().len() + 2;
            assert!(encoded_len(sk.core().len()) <= text_size / 3, "encoding not compact enough");
        }
    }

    #[test]
    fn truncated_header_rejected() {
        assert!(matches!(
            decode_superkmer(&[5, 0], 3, 2),
            Err(MspError::CorruptRecord { .. })
        ));
        assert!(decode_superkmer(&[], 3, 2).is_err());
    }

    #[test]
    fn truncated_payload_rejected() {
        let sks = superkmers("GATTACAGATTACA", 5, 3);
        let mut buf = Vec::new();
        encode_superkmer(&sks[0], &mut buf);
        let err = decode_superkmer(&buf[..buf.len() - 1], 5, 3).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn core_shorter_than_k_rejected() {
        // Hand-craft a record whose core (4 bases) is shorter than k=5.
        let buf = [4u8, 0, 0, 0b00011011];
        let err = decode_superkmer(&buf, 5, 3).unwrap_err();
        assert!(err.to_string().contains("cannot hold"), "{err}");
    }

    #[test]
    fn slice_encoding_is_byte_identical_to_owned() {
        // Reads long enough to fragment, plus word-boundary-crossing cores.
        let reads = [
            "TGATGGATGAACCAGTTTGAGGCATTAGGCAT",
            &"ACGTTGCATGGACCAGTTACGGATCAGGCATTAGCCAGT".repeat(3),
            &"A".repeat(80),
        ];
        for r in reads {
            let read = PackedSeq::from_ascii(r.as_bytes());
            for (k, p) in [(5, 3), (7, 4), (21, 11), (33, 15)] {
                if read.len() < k {
                    continue;
                }
                let scanner = crate::SuperkmerScanner::new(k, p).unwrap();
                let mut first = 0usize;
                for sk in scanner.scan(&read) {
                    let last = first + sk.kmer_count() - 1;
                    let mut owned = Vec::new();
                    encode_superkmer(&sk, &mut owned);
                    let mut borrowed = Vec::new();
                    encode_superkmer_slice(
                        &read,
                        first,
                        last,
                        k,
                        sk.left_ext(),
                        sk.right_ext(),
                        &mut borrowed,
                    );
                    assert_eq!(owned, borrowed, "r-len={} k={k} p={p} first={first}", read.len());
                    first = last + 1;
                }
            }
        }
    }

    #[test]
    fn slice_encoding_roundtrips_through_decoder() {
        let read = PackedSeq::from_ascii(b"ACGTTGCATGGACCAGTTACGGATCAGGCATT");
        let scanner = crate::SuperkmerScanner::new(7, 4).unwrap();
        let sks = scanner.scan(&read);
        let mut first = 0usize;
        for sk in &sks {
            let last = first + sk.kmer_count() - 1;
            let mut buf = Vec::new();
            encode_superkmer_slice(&read, first, last, 7, sk.left_ext(), sk.right_ext(), &mut buf);
            let (back, used) = decode_superkmer(&buf, 7, 4).unwrap();
            assert_eq!(used, buf.len());
            assert_eq!(&back, sk);
            first = last + 1;
        }
    }

    #[test]
    #[should_panic(expected = "empty superkmer run")]
    fn slice_encoding_rejects_inverted_run() {
        let read = PackedSeq::from_ascii(b"ACGTACGT");
        encode_superkmer_slice(&read, 2, 1, 4, None, None, &mut Vec::new());
    }

    #[test]
    fn flags_encode_extensions_independently() {
        for (l, r) in [(None, None), (Some(Base::G), None), (None, Some(Base::T)), (Some(Base::C), Some(Base::A))] {
            let sk = Superkmer::new(PackedSeq::from_ascii(b"ACGTA"), "AC".parse().unwrap(), 5, l, r);
            let mut buf = Vec::new();
            encode_superkmer(&sk, &mut buf);
            let (back, _) = decode_superkmer(&buf, 5, 2).unwrap();
            assert_eq!(back.left_ext(), l);
            assert_eq!(back.right_ext(), r);
        }
    }
}
