use dna::{Base, Kmer, PackedSeq};

use crate::{MinimizerScanner, Result};

/// A maximal run of adjacent k-mers from one read that share a common
/// minimizer (Definition 2 of the paper), plus the two *adjacency
/// extension* bases ParaHash appends so edges crossing the superkmer
/// boundary survive partitioning.
///
/// For a run covering k-mer positions `i..=j` of read `S`, the core
/// sequence is `S[i, j+K−1]`, `left_ext` is `S[i−1]` (when `i > 0`) and
/// `right_ext` is `S[j+K]` (when it exists).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Superkmer {
    core: PackedSeq,
    minimizer: Kmer,
    k: usize,
    left_ext: Option<Base>,
    right_ext: Option<Base>,
}

impl Superkmer {
    /// Assembles a superkmer from parts. Intended for decoders and tests;
    /// scanning a read with [`SuperkmerScanner`] is the normal source.
    ///
    /// # Panics
    ///
    /// Panics if the core is shorter than `k`.
    pub fn new(
        core: PackedSeq,
        minimizer: Kmer,
        k: usize,
        left_ext: Option<Base>,
        right_ext: Option<Base>,
    ) -> Superkmer {
        assert!(core.len() >= k, "superkmer core of {} bases cannot hold a {k}-mer", core.len());
        Superkmer { core, minimizer, k, left_ext, right_ext }
    }

    /// The core sequence `S[i, j+K−1]` (without extensions).
    pub fn core(&self) -> &PackedSeq {
        &self.core
    }

    /// The shared minimizer of every k-mer in this superkmer.
    pub fn minimizer(&self) -> &Kmer {
        &self.minimizer
    }

    /// The k-mer length this superkmer was cut for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The read base immediately left of the core, if any.
    pub fn left_ext(&self) -> Option<Base> {
        self.left_ext
    }

    /// The read base immediately right of the core, if any.
    pub fn right_ext(&self) -> Option<Base> {
        self.right_ext
    }

    /// Number of k-mers the superkmer contains (`M = core_len − K + 1`).
    pub fn kmer_count(&self) -> usize {
        self.core.len() - self.k + 1
    }

    /// Iterates over the k-mers of the core, left to right.
    pub fn kmers(&self) -> impl Iterator<Item = Kmer> + '_ {
        self.core.kmers(self.k)
    }

    /// The core plus both extension bases, i.e. the exact read substring
    /// this superkmer witnessed. Every consecutive k-mer pair of *this*
    /// sequence is an observed De Bruijn edge.
    pub fn extended_seq(&self) -> PackedSeq {
        let mut out = PackedSeq::with_capacity(self.core.len() + 2);
        if let Some(b) = self.left_ext {
            out.push(b);
        }
        out.extend(self.core.bases());
        if let Some(b) = self.right_ext {
            out.push(b);
        }
        out
    }

    /// Space saving of the superkmer representation vs. storing its k-mers
    /// separately: `M·K` bases compacted into `M + K − 1 (+2)` bases.
    pub fn compaction_ratio(&self) -> f64 {
        let expanded = self.kmer_count() * self.k;
        let stored = self.core.len() + self.left_ext.map_or(0, |_| 1) + self.right_ext.map_or(0, |_| 1);
        expanded as f64 / stored as f64
    }
}

/// Cuts reads into superkmers (Step 1's compute kernel).
///
/// # Examples
///
/// ```
/// use dna::PackedSeq;
/// use msp::SuperkmerScanner;
///
/// # fn main() -> msp::Result<()> {
/// let read = PackedSeq::from_ascii(b"TGATGGATGAACCAGT");
/// let superkmers = SuperkmerScanner::new(5, 3)?.scan(&read);
/// // Superkmers tile the read: cores overlap by K−1 bases.
/// let covered: usize = superkmers.iter().map(|s| s.kmer_count()).sum();
/// assert_eq!(covered, read.len() - 5 + 1);
/// // Each one knows the base beyond each end (except at read borders).
/// assert!(superkmers.first().unwrap().left_ext().is_none());
/// assert!(superkmers.last().unwrap().right_ext().is_none());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SuperkmerScanner {
    scanner: MinimizerScanner,
}

impl SuperkmerScanner {
    /// Creates a scanner for k-mers of length `k` and minimizers of
    /// length `p`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::MspError::InvalidParams`] unless `1 ≤ p ≤ k ≤ MAX_K`.
    pub fn new(k: usize, p: usize) -> Result<SuperkmerScanner> {
        Ok(SuperkmerScanner { scanner: MinimizerScanner::new(k, p)? })
    }

    /// The k-mer length.
    pub fn k(&self) -> usize {
        self.scanner.k()
    }

    /// The minimizer length.
    pub fn p(&self) -> usize {
        self.scanner.p()
    }

    /// Scans one read into superkmers (empty if shorter than `k`).
    pub fn scan(&self, read: &PackedSeq) -> Vec<Superkmer> {
        self.superkmers_from_boundaries(read, &self.scan_boundaries(read))
    }

    /// Scans with the naive minimizer search; identical output to
    /// [`SuperkmerScanner::scan`], used by tests and the ablation bench.
    pub fn scan_naive(&self, read: &PackedSeq) -> Vec<Superkmer> {
        let mins = self.scanner.scan_naive(read);
        self.superkmers_from_boundaries(read, &cut_runs(&mins))
    }

    /// Creates a reusable streaming cursor for this scanner's parameters
    /// (one per worker thread; see [`crate::MinimizerCursor::scan_runs`]).
    pub fn cursor(&self) -> crate::MinimizerCursor {
        self.scanner.cursor()
    }

    /// Streaming scan: invokes `emit(first, last, minimizer)` per maximal
    /// equal-minimizer run, identical runs to
    /// [`scan_boundaries`](Self::scan_boundaries) but with zero heap
    /// allocation per read (the `cursor` carries all reusable state).
    pub fn scan_runs<F: FnMut(usize, usize, Kmer)>(
        &self,
        read: &PackedSeq,
        cursor: &mut crate::MinimizerCursor,
        emit: F,
    ) {
        debug_assert_eq!(cursor.k(), self.k());
        debug_assert_eq!(cursor.p(), self.p());
        cursor.scan_runs(read, emit);
    }

    /// Streaming variant of [`scan_boundaries`](Self::scan_boundaries)
    /// that clears and fills a caller-owned buffer, so the boundary
    /// allocation is reused across reads (the SimGpu kernel path).
    pub fn scan_runs_into(
        &self,
        read: &PackedSeq,
        cursor: &mut crate::MinimizerCursor,
        out: &mut Vec<(usize, usize, Kmer)>,
    ) {
        out.clear();
        self.scan_runs(read, cursor, |first, last, m| out.push((first, last, m)));
    }

    /// The *offsets-only* half of the scan: the `(first kmer index,
    /// last kmer index, minimizer)` of each maximal equal-minimizer run.
    ///
    /// This is exactly what the paper's Step-1 GPU kernel computes
    /// ("computing superkmer ids and offsets in reads", §III-D): fixed-size
    /// output per run, no irregular memory movement. The movement —
    /// materialising the variable-length superkmers — is
    /// [`superkmers_from_boundaries`](Self::superkmers_from_boundaries),
    /// which the paper leaves to the CPU.
    pub fn scan_boundaries(&self, read: &PackedSeq) -> Vec<(usize, usize, Kmer)> {
        cut_runs(&self.scanner.scan(read))
    }

    /// Materialises the superkmers described by
    /// [`scan_boundaries`](Self::scan_boundaries) output.
    ///
    /// # Panics
    ///
    /// Panics if a boundary range does not fit the read.
    pub fn superkmers_from_boundaries(
        &self,
        read: &PackedSeq,
        boundaries: &[(usize, usize, Kmer)],
    ) -> Vec<Superkmer> {
        let k = self.scanner.k();
        boundaries
            .iter()
            .map(|&(first, last, minimizer)| {
                let core = read.slice(first, last - first + k);
                let left_ext = first.checked_sub(1).map(|i| read.base(i));
                let right_ext = (last + k < read.len()).then(|| read.base(last + k));
                Superkmer { core, minimizer, k, left_ext, right_ext }
            })
            .collect()
    }
}

/// Groups a per-kmer minimizer sequence into maximal equal runs.
fn cut_runs(mins: &[Kmer]) -> Vec<(usize, usize, Kmer)> {
    let mut out = Vec::new();
    let mut run_start = 0usize;
    for pos in 1..=mins.len() {
        if pos == mins.len() || mins[pos] != mins[run_start] {
            out.push((run_start, pos - 1, mins[run_start]));
            run_start = pos;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dna::Kmer;

    fn seq(s: &str) -> PackedSeq {
        PackedSeq::from_ascii(s.as_bytes())
    }

    fn scan(s: &str, k: usize, p: usize) -> Vec<Superkmer> {
        SuperkmerScanner::new(k, p).unwrap().scan(&seq(s))
    }

    #[test]
    fn superkmers_tile_the_read() {
        let read = "ACGTTGCATGGACCAGTTACGGATCAGGCATTAGCCAGT";
        for (k, p) in [(5, 3), (7, 4), (15, 11), (5, 5)] {
            let sks = scan(read, k, p);
            let total: usize = sks.iter().map(Superkmer::kmer_count).sum();
            assert_eq!(total, read.len() - k + 1, "k={k} p={p}");
            // Reassembling consecutive cores with K−1 overlap gives the read.
            let mut rebuilt = sks[0].core().to_string();
            for s in &sks[1..] {
                let c = s.core().to_string();
                rebuilt.push_str(&c[k - 1..]);
            }
            assert_eq!(rebuilt, read, "k={k} p={p}");
        }
    }

    #[test]
    fn kmers_in_superkmer_share_its_minimizer() {
        for s in scan("TGATGGATGAACCAGTTTGAGGCATTA", 5, 3) {
            for km in s.kmers() {
                assert_eq!(crate::minimizer_of_kmer(&km, 3), *s.minimizer());
            }
        }
    }

    #[test]
    fn adjacent_superkmers_have_distinct_minimizers() {
        let sks = scan("TGATGGATGAACCAGTTTGAGGCATTAGGC", 5, 3);
        for w in sks.windows(2) {
            assert_ne!(w[0].minimizer(), w[1].minimizer());
        }
    }

    #[test]
    fn extensions_record_boundary_bases() {
        let read = "TGATGGATGAACCAGTTTGA";
        let sks = scan(read, 5, 3);
        assert!(sks.len() >= 2, "test needs a read that fragments");
        let bytes = read.as_bytes();
        let mut offset = 0usize;
        for s in &sks {
            if offset == 0 {
                assert_eq!(s.left_ext(), None);
            } else {
                assert_eq!(s.left_ext().unwrap().to_ascii(), bytes[offset - 1]);
            }
            let end = offset + s.kmer_count() + s.k() - 1;
            if end == read.len() {
                assert_eq!(s.right_ext(), None);
            } else {
                assert_eq!(s.right_ext().unwrap().to_ascii(), bytes[end]);
            }
            offset += s.kmer_count();
        }
    }

    #[test]
    fn extended_seq_restores_read_edges() {
        let read = "TGATGGATGAACCAGTTTGA";
        let k = 5;
        let sks = scan(read, k, 3);
        // Collect every consecutive-kmer edge from the original read...
        let all_edges: Vec<(Kmer, Kmer)> = {
            let s = seq(read);
            let v: Vec<Kmer> = s.kmers(k).collect();
            v.windows(2).map(|w| (w[0], w[1])).collect()
        };
        // ...and from the extended superkmer sequences.
        let mut from_sks: Vec<(Kmer, Kmer)> = Vec::new();
        for s in &sks {
            let ext = s.extended_seq();
            let v: Vec<Kmer> = ext.kmers(k).collect();
            from_sks.extend(v.windows(2).map(|w| (w[0], w[1])));
        }
        // Every read edge appears (possibly twice: once in each adjacent
        // superkmer's extension).
        for e in &all_edges {
            assert!(from_sks.contains(e), "edge {:?} lost by partitioning", e);
        }
        // And no invented edges.
        for e in &from_sks {
            assert!(all_edges.contains(e), "edge {:?} fabricated", e);
        }
    }

    #[test]
    fn single_kmer_read() {
        let sks = scan("GATTA", 5, 2);
        assert_eq!(sks.len(), 1);
        assert_eq!(sks[0].kmer_count(), 1);
        assert_eq!(sks[0].left_ext(), None);
        assert_eq!(sks[0].right_ext(), None);
        assert_eq!(sks[0].compaction_ratio(), 1.0);
    }

    #[test]
    fn short_read_yields_nothing() {
        assert!(scan("ACG", 5, 3).is_empty());
    }

    #[test]
    fn naive_and_fast_scans_agree() {
        let sc = SuperkmerScanner::new(7, 4).unwrap();
        let read = seq("ACGTTGCATGGACCAGTTACGGATCAGGCATTAGCCAGTACGGATCA");
        assert_eq!(sc.scan(&read), sc.scan_naive(&read));
    }

    #[test]
    fn boundaries_split_equals_direct_scan() {
        // The paper's GPU/CPU split: offsets on one processor, movement on
        // the other, must compose to the same superkmers.
        let sc = SuperkmerScanner::new(7, 4).unwrap();
        let read = seq("ACGTTGCATGGACCAGTTACGGATCAGGCATTAGCCAGT");
        let boundaries = sc.scan_boundaries(&read);
        assert!(!boundaries.is_empty());
        // Boundaries tile the kmer index range contiguously.
        assert_eq!(boundaries[0].0, 0);
        for w in boundaries.windows(2) {
            assert_eq!(w[0].1 + 1, w[1].0);
        }
        assert_eq!(boundaries.last().unwrap().1, read.len() - 7);
        assert_eq!(sc.superkmers_from_boundaries(&read, &boundaries), sc.scan(&read));
    }

    #[test]
    fn scan_runs_into_equals_scan_boundaries() {
        let sc = SuperkmerScanner::new(7, 4).unwrap();
        let mut cursor = sc.cursor();
        let mut buf = Vec::new();
        for r in [
            "ACGTTGCATGGACCAGTTACGGATCAGGCATTAGCCAGT",
            "TTTTTTTTTTTTTTT",
            "GATTACA",
            "ACG", // shorter than k: both empty
        ] {
            let read = seq(r);
            buf.push((99, 99, "A".parse().unwrap())); // must be cleared
            sc.scan_runs_into(&read, &mut cursor, &mut buf);
            assert_eq!(buf, sc.scan_boundaries(&read), "read={r}");
        }
    }

    #[test]
    fn homopolymer_read_is_one_superkmer() {
        let sks = scan(&"A".repeat(30), 5, 3);
        assert_eq!(sks.len(), 1);
        assert_eq!(sks[0].kmer_count(), 26);
        assert!(sks[0].compaction_ratio() > 4.0);
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn new_rejects_short_core() {
        Superkmer::new(seq("ACG"), "AC".parse().unwrap(), 5, None, None);
    }
}
