//! Minimum Substring Partitioning (MSP) — Step 1 of ParaHash.
//!
//! Partitions the De Bruijn graph *before it exists* by cutting each read
//! into [`Superkmer`]s: maximal runs of adjacent k-mers that share one
//! *minimizer* (the minimal length-`P` substring, Definition 1 of the
//! paper). All duplicates of a vertex share its minimizer, so routing
//! superkmers by `hash(minimizer) mod n` sends every duplicate — and its
//! recorded neighbours — to the same partition, allowing each partition's
//! subgraph to be built independently in Step 2.
//!
//! Two paper-specific refinements are implemented here:
//!
//! * **Adjacency extensions** — each superkmer carries up to two extra
//!   base pairs (the read base immediately before and after it), restoring
//!   the edge information that plain MSP k-mer counting loses.
//! * **2-bit encoding** — partition files store packed records
//!   ([`encode_superkmer`]), about ¼ the size of the textual
//!   representation, cutting disk and host↔device transfer volume.
//!
//! One deliberate deviation from the paper's Definition 1: minimizers are
//! computed over the *canonical pair* (the k-mer and its reverse
//! complement). The paper's correctness argument — "identical vertices
//! share the same minimizer" — only holds for bi-directed graphs when both
//! strands are considered, since a vertex is a canonical k-mer and its two
//! textual appearances are reverse complements of each other.
//!
//! # Examples
//!
//! ```
//! use dna::PackedSeq;
//! use msp::SuperkmerScanner;
//!
//! # fn main() -> msp::Result<()> {
//! let read = PackedSeq::from_ascii(b"TGATGGATGAACCAGTTTGA");
//! let scanner = SuperkmerScanner::new(5, 3)?;
//! let superkmers = scanner.scan(&read);
//! // Every k-mer of the read appears in exactly one superkmer:
//! let total: usize = superkmers.iter().map(|s| s.kmer_count()).sum();
//! assert_eq!(total, read.len() - 5 + 1);
//! # Ok(())
//! # }
//! ```

mod frame;
mod minimizer;
mod partition;
mod reader;
mod record;
mod stats;
mod store;
mod subsplit;
mod superkmer;
mod view;
mod writer;

pub use frame::{
    append_frame, crc32, deframe, deframe_in, frame_payloads, frame_payloads_in, FrameFault,
    DEFAULT_FRAME_TARGET, FRAME_HEADER_LEN,
};
pub use minimizer::{minimizer_of_kmer, MinimizerCursor, MinimizerScanner};
pub use partition::{partition_in_memory, PartitionRouter};
pub use reader::{FastqChunks, PartitionReader};
pub use record::{decode_superkmer, encode_superkmer, encode_superkmer_slice, encoded_len};
pub use stats::{DistributionSummary, PartitionStats};
pub use store::{PartitionSink, PartitionStore, SealedPartition, SealedPayload};
pub use subsplit::{split_framed, sub_route, SubPartition};
pub use superkmer::{Superkmer, SuperkmerScanner};
pub use view::{iter_views, CodeWords, PartitionSlices, SuperkmerView, ViewIter};
pub use writer::{PartitionManifest, PartitionWriter, QuarantinedPartition};

/// Errors from MSP partition I/O and parameter validation.
#[derive(Debug)]
#[non_exhaustive]
pub enum MspError {
    /// `P` or `K` out of range (`1 ≤ P ≤ K ≤ dna::MAX_K`).
    InvalidParams {
        /// The k-mer length.
        k: usize,
        /// The minimizer length.
        p: usize,
    },
    /// The number of partitions was zero.
    NoPartitions,
    /// A partition file ended in the middle of a record, or a record
    /// header was internally inconsistent.
    CorruptRecord {
        /// Byte offset at which the problem was detected.
        offset: u64,
        /// Description of the inconsistency.
        reason: String,
    },
    /// An underlying I/O operation failed.
    Io(std::io::Error),
}

impl std::fmt::Display for MspError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MspError::InvalidParams { k, p } => {
                write!(f, "invalid msp parameters: k={k}, p={p} (need 1 <= p <= k <= {})", dna::MAX_K)
            }
            MspError::NoPartitions => write!(f, "number of partitions must be at least 1"),
            MspError::CorruptRecord { offset, reason } => {
                write!(f, "corrupt superkmer record at byte {offset}: {reason}")
            }
            MspError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for MspError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MspError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for MspError {
    fn from(e: std::io::Error) -> Self {
        MspError::Io(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, MspError>;
