use std::fs;
use std::ops::Range;
use std::path::Path;

use crate::{decode_superkmer, MspError, PartitionManifest, Result, Superkmer};

/// Reads one encoded superkmer partition file back into [`Superkmer`]s.
///
/// The whole file is slurped at open time — partitions are sized (via the
/// partition count) to fit comfortably in memory; that is the point of
/// partitioning — and records are decoded lazily by the iterator.
///
/// # Examples
///
/// ```no_run
/// use msp::{PartitionManifest, PartitionReader};
///
/// # fn main() -> msp::Result<()> {
/// let manifest = PartitionManifest::load("/tmp/parts")?;
/// let reader = PartitionReader::open(&manifest, 3)?;
/// for sk in reader {
///     let sk = sk?;
///     println!("{} kmers", sk.kmer_count());
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct PartitionReader {
    bytes: Vec<u8>,
    offset: usize,
    k: usize,
    p: usize,
    failed: bool,
}

impl PartitionReader {
    /// Opens partition `index` of a manifest.
    ///
    /// # Errors
    ///
    /// Returns [`MspError::Io`] if the partition file cannot be read.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for the manifest.
    pub fn open(manifest: &PartitionManifest, index: usize) -> Result<PartitionReader> {
        Self::from_path(manifest.partition_path(index), manifest.k(), manifest.p())
    }

    /// Opens an arbitrary partition file written with parameters `k`, `p`.
    /// The file's CRC32 frames (see [`crate::frame`]) are verified and
    /// stripped up front, so every record handed out decoded from bytes
    /// that passed their checksum.
    ///
    /// # Errors
    ///
    /// Returns [`MspError::InvalidParams`] for bad parameters,
    /// [`MspError::Io`] if the file cannot be read, or
    /// [`MspError::CorruptRecord`] if a frame is truncated or fails its
    /// checksum.
    pub fn from_path(path: impl AsRef<Path>, k: usize, p: usize) -> Result<PartitionReader> {
        if p < 1 || p > k || k > dna::MAX_K {
            return Err(MspError::InvalidParams { k, p });
        }
        let framed = fs::read(path)?;
        Ok(PartitionReader { bytes: crate::frame::deframe(&framed)?, offset: 0, k, p, failed: false })
    }

    /// Decodes a partition already held in memory (the pipeline hands
    /// byte buffers between its input stage and the compute stage). The
    /// buffer must be *raw* records — already deframed; use
    /// [`crate::deframe`] first when starting from file bytes.
    ///
    /// # Errors
    ///
    /// Returns [`MspError::InvalidParams`] for bad parameters.
    pub fn from_bytes(bytes: Vec<u8>, k: usize, p: usize) -> Result<PartitionReader> {
        if p < 1 || p > k || k > dna::MAX_K {
            return Err(MspError::InvalidParams { k, p });
        }
        Ok(PartitionReader { bytes, offset: 0, k, p, failed: false })
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.offset
    }

    /// Decodes every remaining record into a vector.
    ///
    /// # Errors
    ///
    /// Returns the first decode error (e.g. a truncated final record).
    pub fn read_all(self) -> Result<Vec<Superkmer>> {
        self.collect()
    }
}

impl Iterator for PartitionReader {
    type Item = Result<Superkmer>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || self.offset >= self.bytes.len() {
            return None;
        }
        match decode_superkmer(&self.bytes[self.offset..], self.k, self.p) {
            Ok((sk, used)) => {
                self.offset += used;
                Some(Ok(sk))
            }
            Err(MspError::CorruptRecord { offset, reason }) => {
                self.failed = true;
                Some(Err(MspError::CorruptRecord {
                    offset: offset + self.offset as u64,
                    reason,
                }))
            }
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

/// A FASTQ input file prepared for parallel ingest: the whole file
/// addressable as one byte slice (memory-mapped when possible, inflated
/// into memory when gzip-compressed) plus precomputed record-aligned
/// chunk ranges that Step-1 workers can parse independently.
///
/// Gzip inputs are detected by magic number. Multi-member streams (BGZF
/// and plain concatenated gzip, the common layout for big sequencing
/// runs) are inflated member-parallel across the machine's cores;
/// single-member streams inflate sequentially. `PARAHASH_FORCE_SCALAR`
/// forces the sequential inflate path along with every other scalar
/// fallback.
///
/// # Examples
///
/// ```no_run
/// use msp::FastqChunks;
///
/// # fn main() -> msp::Result<()> {
/// let chunks = FastqChunks::open("reads.fastq", 8 << 20)?;
/// for i in 0..chunks.n_chunks() {
///     let bytes = chunks.chunk(i); // starts at a record boundary
///     let _ = bytes.len();
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FastqChunks {
    bytes: dna::InputBytes,
    ranges: Vec<Range<usize>>,
}

impl FastqChunks {
    /// Opens `path` and splits it into record-aligned chunks of roughly
    /// `target_bytes` each (after decompression, for gzip inputs).
    ///
    /// # Errors
    ///
    /// Returns [`MspError::Io`] if the file cannot be read or its gzip
    /// framing is invalid.
    pub fn open(path: impl AsRef<Path>, target_bytes: usize) -> Result<FastqChunks> {
        let input = dna::InputBytes::open(path)?;
        let input = if dna::gzip::is_gzip(input.as_bytes()) {
            let inflated = decompress_parallel(input.as_bytes())
                .map_err(|e| MspError::Io(std::io::Error::other(e)))?;
            dna::InputBytes::from_vec(inflated)
        } else {
            input
        };
        let ranges = dna::chunk_record_ranges(input.as_bytes(), target_bytes);
        Ok(FastqChunks { bytes: input, ranges })
    }

    /// The whole (decompressed) file.
    pub fn bytes(&self) -> &[u8] {
        self.bytes.as_bytes()
    }

    /// The record-aligned chunk ranges; they tile `0..bytes().len()`.
    pub fn ranges(&self) -> &[Range<usize>] {
        &self.ranges
    }

    /// Number of chunks (zero for an empty file).
    pub fn n_chunks(&self) -> usize {
        self.ranges.len()
    }

    /// The bytes of chunk `index`; starts at a record boundary.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn chunk(&self, index: usize) -> &[u8] {
        &self.bytes.as_bytes()[self.ranges[index].clone()]
    }
}

/// Inflates a gzip stream, splitting multi-member streams across threads
/// (each member is an independent deflate stream, so members can inflate
/// concurrently and concatenate in order).
fn decompress_parallel(data: &[u8]) -> std::result::Result<Vec<u8>, dna::DnaError> {
    let members = dna::gzip::member_ranges(data)?;
    let threads = std::thread::available_parallelism().map_or(1, usize::from).min(members.len());
    if threads <= 1 || dna::simd::force_scalar() {
        return dna::gzip::decompress(data);
    }
    let per_thread = members.len().div_ceil(threads);
    let parts: Vec<std::result::Result<Vec<u8>, dna::DnaError>> = std::thread::scope(|s| {
        let handles: Vec<_> = members
            .chunks(per_thread)
            .map(|group| {
                s.spawn(move || {
                    let mut out = Vec::new();
                    for r in group {
                        dna::gzip::decompress_member(&data[r.clone()], &mut out)?;
                    }
                    Ok(out)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("gzip worker panicked")).collect()
    });
    let mut out = Vec::new();
    for part in parts {
        out.append(&mut part?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PartitionWriter, SuperkmerScanner};
    use dna::PackedSeq;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("msp-reader-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn write_then_read_recovers_superkmers_per_partition() {
        let dir = tmpdir("rw");
        let scanner = SuperkmerScanner::new(7, 4).unwrap();
        let reads: Vec<PackedSeq> = [
            "ACGTTGCATGGACCAGTTACGGATCAGGCATTAGCCAGT",
            "TTTTGGGGCCCCAAAATTTTGGGGCCCCAAAA",
        ]
        .iter()
        .map(|s| PackedSeq::from_ascii(s.as_bytes()))
        .collect();

        let n = 6;
        let mut w = PartitionWriter::create(&dir, n, 7, 4).unwrap();
        let mut expected: Vec<Vec<Superkmer>> = vec![Vec::new(); n];
        let router = crate::PartitionRouter::new(n).unwrap();
        for r in &reads {
            for sk in scanner.scan(r) {
                expected[router.route(&sk)].push(sk.clone());
                w.write(&sk).unwrap();
            }
        }
        let manifest = w.finish().unwrap();
        for (i, want) in expected.iter().enumerate() {
            let got = PartitionReader::open(&manifest, i).unwrap().read_all().unwrap();
            assert_eq!(&got, want, "partition {i}");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_file_reports_corrupt_record() {
        let dir = tmpdir("trunc");
        let scanner = SuperkmerScanner::new(5, 3).unwrap();
        let mut w = PartitionWriter::create(&dir, 1, 5, 3).unwrap();
        for sk in scanner.scan(&PackedSeq::from_ascii(b"ACGTTGCATGGACCAGTT")) {
            w.write(&sk).unwrap();
        }
        let manifest = w.finish().unwrap();
        let path = manifest.partition_path(0);
        let mut bytes = fs::read(&path).unwrap();
        bytes.truncate(bytes.len() - 1);
        fs::write(&path, &bytes).unwrap();

        // Frame verification happens at open time, before any decoding.
        let err = PartitionReader::open(&manifest, 0).unwrap_err();
        assert!(matches!(err, MspError::CorruptRecord { .. }), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interior_byte_flip_reports_corrupt_record() {
        let dir = tmpdir("bitflip");
        let scanner = SuperkmerScanner::new(5, 3).unwrap();
        let mut w = PartitionWriter::create(&dir, 1, 5, 3).unwrap();
        for sk in scanner.scan(&PackedSeq::from_ascii(b"ACGTTGCATGGACCAGTT")) {
            w.write(&sk).unwrap();
        }
        let manifest = w.finish().unwrap();
        let path = manifest.partition_path(0);
        let mut bytes = fs::read(&path).unwrap();
        // Flip a base inside the payload: still decodes as valid DNA in the
        // raw format, so only the checksum can catch it.
        let mid = crate::FRAME_HEADER_LEN + (bytes.len() - crate::FRAME_HEADER_LEN) / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).unwrap();

        let err = PartitionReader::open(&manifest, 0).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reader_fuses_after_raw_decode_error() {
        let dir = tmpdir("fuse");
        let scanner = SuperkmerScanner::new(5, 3).unwrap();
        let mut w = PartitionWriter::create(&dir, 1, 5, 3).unwrap();
        for sk in scanner.scan(&PackedSeq::from_ascii(b"ACGTTGCATGGACCAGTT")) {
            w.write(&sk).unwrap();
        }
        let manifest = w.finish().unwrap();
        let mut raw = crate::deframe(&fs::read(manifest.partition_path(0)).unwrap()).unwrap();
        raw.truncate(raw.len() - 1); // cut the last record mid-payload
        let mut r = PartitionReader::from_bytes(raw, 5, 3).unwrap();
        let mut saw_err = false;
        while let Some(item) = r.next() {
            if item.is_err() {
                saw_err = true;
                assert!(r.next().is_none(), "reader must fuse after an error");
                break;
            }
        }
        assert!(saw_err, "truncated record must surface an error");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn from_bytes_matches_from_path() {
        let dir = tmpdir("bytes");
        let scanner = SuperkmerScanner::new(5, 2).unwrap();
        let mut w = PartitionWriter::create(&dir, 1, 5, 2).unwrap();
        for sk in scanner.scan(&PackedSeq::from_ascii(b"GGCATTAGCCAGTACG")) {
            w.write(&sk).unwrap();
        }
        let manifest = w.finish().unwrap();
        let path = manifest.partition_path(0);
        let via_path = PartitionReader::from_path(&path, 5, 2).unwrap().read_all().unwrap();
        let raw = crate::deframe(&fs::read(&path).unwrap()).unwrap();
        let via_bytes = PartitionReader::from_bytes(raw, 5, 2)
            .unwrap()
            .read_all()
            .unwrap();
        assert_eq!(via_path, via_bytes);
        assert!(!via_path.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Deterministic FASTQ text of `n` records with varied lengths.
    fn fastq_text(n: usize) -> String {
        let mut s = String::new();
        for i in 0..n {
            let len = 40 + (i * 13) % 61;
            let seq: String =
                (0..len).map(|j| ['A', 'C', 'G', 'T'][(i * 7 + j * 3) % 4]).collect();
            s.push_str(&format!("@r{i}\n{seq}\n+\n{}\n", "I".repeat(len)));
        }
        s
    }

    fn slurp_records(bytes: &[u8]) -> Vec<dna::SeqRead> {
        dna::FastqSliceReader::new(bytes).collect::<std::result::Result<_, _>>().unwrap()
    }

    #[test]
    fn fastq_chunks_tile_plain_files() {
        let text = fastq_text(200);
        let path = tmpdir("chunks-plain").with_extension("fastq");
        fs::write(&path, &text).unwrap();
        let chunks = FastqChunks::open(&path, 1024).unwrap();
        assert_eq!(chunks.bytes(), text.as_bytes());
        assert!(chunks.n_chunks() > 3, "1 KiB target must split {} bytes", text.len());
        let whole = slurp_records(text.as_bytes());
        let mut rejoined = Vec::new();
        let mut end = 0;
        for (i, r) in chunks.ranges().iter().enumerate() {
            assert_eq!(r.start, end, "chunks must tile");
            end = r.end;
            rejoined.extend(slurp_records(chunks.chunk(i)));
        }
        assert_eq!(end, text.len());
        assert_eq!(rejoined, whole);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fastq_chunks_inflate_multi_member_gzip() {
        let text = fastq_text(1500); // > 2 BGZF members of 60_000 bytes
        let gz = dna::gzip::compress_bgzf(text.as_bytes());
        assert!(dna::gzip::member_ranges(&gz).unwrap().len() >= 2);
        let path = tmpdir("chunks-bgzf").with_extension("fastq.gz");
        fs::write(&path, &gz).unwrap();
        let chunks = FastqChunks::open(&path, 16 << 10).unwrap();
        assert_eq!(chunks.bytes(), text.as_bytes());
        assert_eq!(
            chunks.ranges().iter().flat_map(|r| slurp_records(&text.as_bytes()[r.clone()])).count(),
            1500
        );
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fastq_chunks_inflate_single_member_gzip() {
        let text = fastq_text(30);
        let path = tmpdir("chunks-gz").with_extension("fastq.gz");
        fs::write(&path, dna::gzip::compress_stored(text.as_bytes())).unwrap();
        let chunks = FastqChunks::open(&path, usize::MAX).unwrap();
        assert_eq!(chunks.bytes(), text.as_bytes());
        assert_eq!(chunks.n_chunks(), 1);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fastq_chunks_reject_corrupt_gzip() {
        let mut gz = dna::gzip::compress_stored(fastq_text(5).as_bytes());
        let mid = gz.len() / 2;
        gz[mid] ^= 0xFF;
        let path = tmpdir("chunks-bad").with_extension("fastq.gz");
        fs::write(&path, &gz).unwrap();
        assert!(matches!(FastqChunks::open(&path, 1024), Err(MspError::Io(_))));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_partition_iterates_nothing() {
        let r = PartitionReader::from_bytes(Vec::new(), 5, 3).unwrap();
        assert_eq!(r.count(), 0);
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(PartitionReader::from_bytes(Vec::new(), 3, 5).is_err());
        assert!(PartitionReader::from_path("/nonexistent", 3, 5).is_err());
    }
}
