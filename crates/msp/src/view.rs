//! Zero-copy decoding of encoded partition buffers.
//!
//! [`decode_superkmer`](crate::decode_superkmer) materialises every record
//! into an owned [`Superkmer`] — one `PackedSeq` heap allocation per
//! record, plus the `Vec<Superkmer>` that collects them. For Step 2 that
//! is pure overhead: the hash-graph kernel only ever *reads* the core
//! bases left to right, so the loaded partition buffer itself can serve as
//! the backing store.
//!
//! This module provides the borrowed view API the Step-2 hot path uses:
//!
//! * [`SuperkmerView`] — a non-owning record view (a slice into the
//!   partition buffer plus the decoded 3-byte header). Base access is one
//!   shift/mask on the packed payload; nothing is copied.
//! * [`PartitionSlices`] — a record index over a whole partition buffer,
//!   built in one validating pass. Provides O(1) random access to views,
//!   which the data-parallel device kernels need (`execute(n, |i| …)`),
//!   at a cost of 4 bytes per record — versus ~`core_len` bytes plus an
//!   allocation for the owned decode.
//! * [`iter_views`] — a purely streaming variant that borrows the buffer
//!   and performs **no heap allocation at all**, for sequential consumers
//!   and the allocation-counting benchmarks.
//!
//! Validation happens once, at indexing time ([`PartitionSlices::index`]
//! checks every header against the buffer length and `core_len ≥ k`), so
//! view accessors can be panic-free simple arithmetic afterwards.

use dna::Base;

use crate::{minimizer_of_kmer, MspError, Result, Superkmer};

/// A borrowed, validated view of one encoded superkmer record.
///
/// Lifetime-bound to the partition byte buffer it was cut from; holds the
/// decoded header fields and a slice of the 2-bit packed core payload.
/// Copy-cheap (one slice + three small integers) and allocation-free.
///
/// # Examples
///
/// ```
/// use dna::PackedSeq;
/// use msp::{encode_superkmer, PartitionSlices, SuperkmerScanner};
///
/// # fn main() -> msp::Result<()> {
/// let read = PackedSeq::from_ascii(b"TGATGGATGAACCAGTTTGA");
/// let mut buf = Vec::new();
/// for sk in SuperkmerScanner::new(5, 3)?.scan(&read) {
///     encode_superkmer(&sk, &mut buf);
/// }
/// let slices = PartitionSlices::index(&buf, 5, 3)?;
/// let total: usize = slices.iter().map(|v| v.kmer_count()).sum();
/// assert_eq!(total, read.len() - 5 + 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SuperkmerView<'a> {
    /// 2-bit packed core bases, 4 per byte, LSB-first; `ceil(core_len/4)`
    /// bytes, validated at construction.
    payload: &'a [u8],
    core_len: usize,
    k: usize,
    flags: u8,
}

impl<'a> SuperkmerView<'a> {
    /// Cuts one record view from the front of `bytes`, returning it and
    /// the encoded length consumed. This is the borrowed twin of
    /// [`decode_superkmer`](crate::decode_superkmer): same format, same
    /// errors, no allocation.
    ///
    /// # Errors
    ///
    /// Returns [`MspError::CorruptRecord`] if `bytes` is too short for
    /// the header or the declared payload, or the core cannot hold one
    /// k-mer. Offsets are relative to `bytes`; callers add their own.
    pub fn parse(bytes: &'a [u8], k: usize) -> Result<(SuperkmerView<'a>, usize)> {
        if bytes.len() < 3 {
            return Err(MspError::CorruptRecord {
                offset: 0,
                reason: format!("{} bytes left, header needs 3", bytes.len()),
            });
        }
        let core_len = u16::from_le_bytes([bytes[0], bytes[1]]) as usize;
        let flags = bytes[2];
        let payload_len = core_len.div_ceil(4);
        let total = 3 + payload_len;
        if bytes.len() < total {
            return Err(MspError::CorruptRecord {
                offset: 0,
                reason: format!(
                    "payload of {payload_len} bytes truncated to {}",
                    bytes.len() - 3
                ),
            });
        }
        if core_len < k {
            return Err(MspError::CorruptRecord {
                offset: 0,
                reason: format!("core of {core_len} bases cannot hold a {k}-mer"),
            });
        }
        Ok((
            SuperkmerView { payload: &bytes[3..total], core_len, k, flags },
            total,
        ))
    }

    /// Number of bases in the core.
    #[inline]
    pub fn core_len(&self) -> usize {
        self.core_len
    }

    /// The k-mer length this record was encoded for.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of k-mers the record contains (`core_len − k + 1`).
    #[inline]
    pub fn kmer_count(&self) -> usize {
        self.core_len - self.k + 1
    }

    /// Core base `i`, decoded straight from the packed payload.
    ///
    /// # Panics
    ///
    /// Panics (in debug; reads garbage-free but wrong in release only if
    /// the index check is elided — it is not: slice indexing stays
    /// checked) if `i ≥ core_len()`.
    #[inline]
    pub fn base(&self, i: usize) -> Base {
        debug_assert!(i < self.core_len, "base index {i} out of {}", self.core_len);
        // `Base::from_code` masks to two bits, so no pre-masking needed.
        Base::from_code(self.payload[i >> 2] >> (2 * (i & 3)))
    }

    /// The read base immediately left of the core, if recorded.
    #[inline]
    pub fn left_ext(&self) -> Option<Base> {
        (self.flags & 1 != 0).then(|| Base::from_code(self.flags >> 2))
    }

    /// The read base immediately right of the core, if recorded.
    #[inline]
    pub fn right_ext(&self) -> Option<Base> {
        (self.flags & 2 != 0).then(|| Base::from_code(self.flags >> 4))
    }

    /// Iterates the core bases left to right without allocating.
    pub fn bases(&self) -> impl Iterator<Item = Base> + 'a {
        let payload = self.payload;
        (0..self.core_len).map(move |i| Base::from_code(payload[i >> 2] >> (2 * (i & 3))))
    }

    /// The raw 2-bit packed core payload (4 bases per byte, LSB-first;
    /// `ceil(core_len/4)` bytes, final byte zero-padded).
    #[inline]
    pub fn payload(&self) -> &'a [u8] {
        self.payload
    }

    /// Word-at-a-time payload decoder: yields the core's 2-bit codes in
    /// `u64` chunks of 32 codes, LSB-first in push order (code `i` of a
    /// chunk at bits `2i..2i+2`), with the final chunk zero-padded. One
    /// 8-byte load replaces 32 per-base byte-index/shift/mask round
    /// trips — the decode half of the Step-2 word-parallel replay.
    ///
    /// The payload layout makes this a straight memory copy: byte `b`
    /// holds codes `4b..4b+4` LSB-first, so `u64::from_le_bytes` over 8
    /// consecutive payload bytes is exactly 32 consecutive codes.
    #[inline]
    pub fn code_words(&self) -> CodeWords<'a> {
        CodeWords { payload: self.payload }
    }

    /// Materialises an owned [`Superkmer`], recomputing the minimizer
    /// from the first k-mer exactly as the owned decoder does. This is
    /// the bridge back to the allocating API — used by tests and
    /// equivalence checks, never by the hot path.
    pub fn to_superkmer(&self, p: usize) -> Superkmer {
        let mut core = dna::PackedSeq::with_capacity(self.core_len);
        for b in self.bases() {
            core.push(b);
        }
        let minimizer =
            minimizer_of_kmer(&core.kmer_at(0, self.k).expect("core_len >= k"), p);
        Superkmer::new(core, minimizer, self.k, self.left_ext(), self.right_ext())
    }
}

/// Iterator over a superkmer core's packed codes in 32-code `u64` chunks,
/// created by [`SuperkmerView::code_words`]. Past the end of the payload
/// it keeps yielding `0` — consumers that eagerly refill one chunk ahead
/// of the cursor (the replay kernel) never need an end check.
#[derive(Debug, Clone, Copy)]
pub struct CodeWords<'a> {
    payload: &'a [u8],
}

impl CodeWords<'_> {
    /// The next 32 codes (zero-padded past the payload end). Infinite by
    /// design; the caller bounds consumption by `core_len`.
    #[inline]
    pub fn next_chunk(&mut self) -> u64 {
        if self.payload.len() >= 8 {
            let chunk = u64::from_le_bytes(self.payload[..8].try_into().expect("8 bytes"));
            self.payload = &self.payload[8..];
            chunk
        } else {
            let mut buf = [0u8; 8];
            buf[..self.payload.len()].copy_from_slice(self.payload);
            self.payload = &[];
            u64::from_le_bytes(buf)
        }
    }
}

/// A validated record index over one encoded partition buffer.
///
/// Built in a single pass that checks every record header, after which
/// [`view`](Self::view) is unconditional O(1) arithmetic — exactly what
/// the index-parallel Step-2 kernels (`device.execute(n, |i| …)`) need.
///
/// Memory cost is 4 bytes per record (a `u32` start offset), compared to
/// the owned decode's per-record `PackedSeq` allocation of
/// `~core_len/4 + 56` bytes.
#[derive(Debug)]
pub struct PartitionSlices<'a> {
    bytes: &'a [u8],
    /// Start offset of each record. `u32` suffices: partitions are sized
    /// to fit in memory and the format caps cores at 64 KiB anyway;
    /// [`index`](Self::index) rejects buffers over 4 GiB.
    offsets: Vec<u32>,
    k: usize,
    p: usize,
}

impl<'a> PartitionSlices<'a> {
    /// Indexes an encoded partition buffer, validating every record.
    ///
    /// # Errors
    ///
    /// Returns [`MspError::InvalidParams`] for bad `k`/`p`,
    /// [`MspError::CorruptRecord`] (with an absolute byte offset) for a
    /// truncated or inconsistent record, and rejects buffers ≥ 4 GiB.
    pub fn index(bytes: &'a [u8], k: usize, p: usize) -> Result<PartitionSlices<'a>> {
        if p < 1 || p > k || k > dna::MAX_K {
            return Err(MspError::InvalidParams { k, p });
        }
        if u32::try_from(bytes.len()).is_err() {
            return Err(MspError::CorruptRecord {
                offset: 0,
                reason: format!("partition buffer of {} bytes exceeds u32 indexing", bytes.len()),
            });
        }
        let mut offsets = Vec::with_capacity(bytes.len() / 16);
        let mut offset = 0usize;
        while offset < bytes.len() {
            match SuperkmerView::parse(&bytes[offset..], k) {
                Ok((_, used)) => {
                    offsets.push(offset as u32);
                    offset += used;
                }
                Err(MspError::CorruptRecord { offset: rel, reason }) => {
                    return Err(MspError::CorruptRecord {
                        offset: rel + offset as u64,
                        reason,
                    });
                }
                Err(e) => return Err(e),
            }
        }
        Ok(PartitionSlices { bytes, offsets, k, p })
    }

    /// Indexes a CRC32-*framed* partition file buffer (the on-disk format
    /// [`PartitionWriter`](crate::PartitionWriter) produces) without
    /// copying the payload out of the frames. Every frame's checksum is
    /// verified, then records are indexed within each frame — the writer
    /// cuts frames at record boundaries, so no record straddles a frame
    /// and each view still borrows straight from `bytes`.
    ///
    /// This is the zero-copy replay entry point for Step 2 when it loads
    /// whole partition files; use [`index`](Self::index) for raw
    /// (already-deframed or never-framed) record buffers.
    ///
    /// # Errors
    ///
    /// Returns [`MspError::InvalidParams`] for bad `k`/`p`, and
    /// [`MspError::CorruptRecord`] (with an absolute byte offset into the
    /// framed buffer) for a truncated frame, a checksum mismatch, or a
    /// record that is inconsistent within its frame.
    pub fn index_framed(bytes: &'a [u8], k: usize, p: usize) -> Result<PartitionSlices<'a>> {
        Self::index_framed_in(bytes, k, p, None)
    }

    /// [`index_framed`](Self::index_framed) with a partition id baked
    /// into error payloads, so recovery logs name the damaged artifact
    /// (partition id, frame index, byte offset, truncated-tail vs
    /// interior-corruption — see [`crate::frame_payloads_in`]).
    ///
    /// # Errors
    ///
    /// Same classes as [`index_framed`](Self::index_framed).
    pub fn index_framed_in(
        bytes: &'a [u8],
        k: usize,
        p: usize,
        partition: Option<usize>,
    ) -> Result<PartitionSlices<'a>> {
        if p < 1 || p > k || k > dna::MAX_K {
            return Err(MspError::InvalidParams { k, p });
        }
        if u32::try_from(bytes.len()).is_err() {
            return Err(MspError::CorruptRecord {
                offset: 0,
                reason: format!("partition buffer of {} bytes exceeds u32 indexing", bytes.len()),
            });
        }
        let mut offsets = Vec::with_capacity(bytes.len() / 16);
        // Verify all frame checksums up front; offsets below are absolute
        // because each payload is a sub-slice of `bytes`.
        let base = bytes.as_ptr() as usize;
        for payload in crate::frame::frame_payloads_in(bytes, partition)? {
            let frame_start = payload.as_ptr() as usize - base;
            let mut offset = 0usize;
            while offset < payload.len() {
                match SuperkmerView::parse(&payload[offset..], k) {
                    Ok((_, used)) => {
                        offsets.push((frame_start + offset) as u32);
                        offset += used;
                    }
                    Err(MspError::CorruptRecord { offset: rel, reason }) => {
                        return Err(MspError::CorruptRecord {
                            offset: rel + (frame_start + offset) as u64,
                            reason,
                        });
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(PartitionSlices { bytes, offsets, k, p })
    }

    /// Number of records in the partition.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// Whether the partition holds no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// The k-mer length the buffer was encoded for.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The minimizer length the buffer was encoded for.
    #[inline]
    pub fn p(&self) -> usize {
        self.p
    }

    /// Total k-mers across all records (the kernel's work-item count).
    pub fn total_kmers(&self) -> usize {
        self.iter().map(|v| v.kmer_count()).sum()
    }

    /// Record `i` as a borrowed view. O(1), allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn view(&self, i: usize) -> SuperkmerView<'a> {
        let start = self.offsets[i] as usize;
        // Records were validated by `index`; re-parsing the header is two
        // loads and stays branch-predictable.
        let (view, _) = SuperkmerView::parse(&self.bytes[start..], self.k)
            .expect("record validated at index time");
        view
    }

    /// Iterates every record view in file order without re-validating.
    pub fn iter(&self) -> impl Iterator<Item = SuperkmerView<'a>> + '_ {
        (0..self.offsets.len()).map(|i| self.view(i))
    }
}

/// Streams record views straight off an encoded buffer with **zero heap
/// allocation** — no offset index, no owned records.
///
/// Errors fuse the iterator, mirroring
/// [`PartitionReader`](crate::PartitionReader) semantics.
pub fn iter_views(bytes: &[u8], k: usize) -> ViewIter<'_> {
    ViewIter { bytes, offset: 0, k, failed: false }
}

/// Iterator returned by [`iter_views`].
#[derive(Debug)]
pub struct ViewIter<'a> {
    bytes: &'a [u8],
    offset: usize,
    k: usize,
    failed: bool,
}

impl<'a> Iterator for ViewIter<'a> {
    type Item = Result<SuperkmerView<'a>>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || self.offset >= self.bytes.len() {
            return None;
        }
        match SuperkmerView::parse(&self.bytes[self.offset..], self.k) {
            Ok((view, used)) => {
                self.offset += used;
                Some(Ok(view))
            }
            Err(MspError::CorruptRecord { offset, reason }) => {
                self.failed = true;
                Some(Err(MspError::CorruptRecord {
                    offset: offset + self.offset as u64,
                    reason,
                }))
            }
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{encode_superkmer, PartitionReader, SuperkmerScanner};
    use dna::PackedSeq;

    fn encode_all(read: &str, k: usize, p: usize) -> Vec<u8> {
        let mut buf = Vec::new();
        for sk in SuperkmerScanner::new(k, p).unwrap().scan(&PackedSeq::from_ascii(read.as_bytes()))
        {
            encode_superkmer(&sk, &mut buf);
        }
        buf
    }

    #[test]
    fn code_words_match_per_base_decode() {
        // Core lengths around every chunk boundary: sub-word, exactly one
        // word, one word + tail, several words.
        for core_len in [5usize, 31, 32, 33, 63, 64, 65, 97] {
            let read: String =
                (0..core_len + 2).map(|i| "ACGT".as_bytes()[(i * 7 + 3) % 4] as char).collect();
            let buf = encode_all(&read, 5, 3);
            let slices = PartitionSlices::index(&buf, 5, 3).unwrap();
            for v in slices.iter() {
                let mut words = v.code_words();
                let mut chunk = 0u64;
                for i in 0..v.core_len() {
                    if i % 32 == 0 {
                        chunk = words.next_chunk();
                    }
                    assert_eq!(
                        (chunk >> (2 * (i % 32))) & 3,
                        v.base(i).code() as u64,
                        "core_len={core_len} i={i}"
                    );
                }
                // Padding past the payload reads as zero, forever.
                assert_eq!(words.next_chunk(), 0);
                assert_eq!(words.next_chunk(), 0);
            }
        }
    }

    #[test]
    fn views_match_owned_decode() {
        let read = "ACGTTGCATGGACCAGTTACGGATCAGGCATTAGCCAGTACGGATCA";
        for (k, p) in [(5, 3), (7, 4), (15, 11)] {
            let buf = encode_all(read, k, p);
            let owned =
                PartitionReader::from_bytes(buf.clone(), k, p).unwrap().read_all().unwrap();
            let slices = PartitionSlices::index(&buf, k, p).unwrap();
            assert_eq!(slices.len(), owned.len(), "k={k} p={p}");
            for (v, sk) in slices.iter().zip(&owned) {
                assert_eq!(&v.to_superkmer(p), sk, "k={k} p={p}");
                assert_eq!(v.kmer_count(), sk.kmer_count());
                assert_eq!(v.left_ext(), sk.left_ext());
                assert_eq!(v.right_ext(), sk.right_ext());
                for (i, b) in sk.core().bases().enumerate() {
                    assert_eq!(v.base(i), b);
                }
            }
        }
    }

    #[test]
    fn random_access_matches_iteration() {
        let buf = encode_all("TGATGGATGAACCAGTTTGAGGCATTAGGCAT", 5, 3);
        let slices = PartitionSlices::index(&buf, 5, 3).unwrap();
        assert!(slices.len() >= 2);
        let seq: Vec<usize> = slices.iter().map(|v| v.core_len()).collect();
        for i in (0..slices.len()).rev() {
            assert_eq!(slices.view(i).core_len(), seq[i]);
        }
        assert_eq!(slices.total_kmers(), 32 - 5 + 1);
    }

    #[test]
    fn streaming_views_match_indexed() {
        let buf = encode_all("ACGTTGCATGGACCAGTTACGGATCAGGCATTAGCCAGT", 7, 4);
        let slices = PartitionSlices::index(&buf, 7, 4).unwrap();
        let streamed: Vec<_> = iter_views(&buf, 7).map(|r| r.unwrap()).collect();
        assert_eq!(streamed.len(), slices.len());
        for (a, b) in streamed.iter().zip(slices.iter()) {
            assert_eq!(a.to_superkmer(4), b.to_superkmer(4));
        }
    }

    #[test]
    fn truncated_buffer_reports_absolute_offset() {
        let buf = encode_all("ACGTTGCATGGACCAGTTACGGATCAGG", 5, 3);
        let cut = &buf[..buf.len() - 1];
        let err = PartitionSlices::index(cut, 5, 3).unwrap_err();
        match err {
            MspError::CorruptRecord { offset, .. } => {
                assert!(offset > 0, "offset should point at the failing record");
            }
            other => panic!("wrong error: {other}"),
        }
        // Streaming iterator fuses after the same error.
        let mut it = iter_views(cut, 5);
        let mut saw_err = false;
        for item in it.by_ref() {
            if item.is_err() {
                saw_err = true;
                break;
            }
        }
        assert!(saw_err);
        assert!(it.next().is_none(), "iterator must fuse after error");
    }

    #[test]
    fn framed_index_matches_raw_index() {
        let read = "ACGTTGCATGGACCAGTTACGGATCAGGCATTAGCCAGTACGGATCA";
        let raw = encode_all(read, 7, 4);
        let slices_raw = PartitionSlices::index(&raw, 7, 4).unwrap();

        // Re-frame the records in several small frames, cut at record
        // boundaries exactly as the writer does.
        let mut framed = Vec::new();
        let mut pending = Vec::new();
        for item in iter_views(&raw, 7) {
            let v = item.unwrap();
            encode_superkmer(&v.to_superkmer(4), &mut pending);
            if pending.len() >= 20 {
                crate::append_frame(&mut framed, &pending);
                pending.clear();
            }
        }
        crate::append_frame(&mut framed, &pending);

        let slices = PartitionSlices::index_framed(&framed, 7, 4).unwrap();
        assert!(framed.len() > raw.len(), "framing adds headers");
        assert_eq!(slices.len(), slices_raw.len());
        assert_eq!(slices.total_kmers(), slices_raw.total_kmers());
        for (a, b) in slices.iter().zip(slices_raw.iter()) {
            assert_eq!(a.to_superkmer(4), b.to_superkmer(4));
        }
        // Random access works across frame boundaries.
        for i in (0..slices.len()).rev() {
            assert_eq!(
                slices.view(i).to_superkmer(4),
                slices_raw.view(i).to_superkmer(4)
            );
        }
    }

    #[test]
    fn framed_index_detects_interior_bit_flip() {
        let raw = encode_all("ACGTTGCATGGACCAGTTACGGATCAGG", 5, 3);
        let mut framed = Vec::new();
        crate::append_frame(&mut framed, &raw);
        assert!(PartitionSlices::index_framed(&framed, 5, 3).is_ok());
        // Flip one payload bit: raw indexing would happily accept the
        // altered DNA; the framed index must reject it.
        let mut bad = framed.clone();
        let victim = crate::FRAME_HEADER_LEN + raw.len() / 2;
        bad[victim] ^= 0x04;
        let err = PartitionSlices::index_framed(&bad, 5, 3).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn framed_index_of_empty_buffer_is_empty() {
        let slices = PartitionSlices::index_framed(&[], 5, 3).unwrap();
        assert!(slices.is_empty());
        assert!(matches!(
            PartitionSlices::index_framed(&[], 3, 5),
            Err(MspError::InvalidParams { .. })
        ));
    }

    #[test]
    fn core_shorter_than_k_rejected() {
        let buf = [4u8, 0, 0, 0b0001_1011];
        assert!(matches!(
            PartitionSlices::index(&buf, 5, 3),
            Err(MspError::CorruptRecord { .. })
        ));
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(matches!(
            PartitionSlices::index(&[], 3, 5),
            Err(MspError::InvalidParams { .. })
        ));
    }

    #[test]
    fn empty_buffer_is_empty_index() {
        let slices = PartitionSlices::index(&[], 5, 3).unwrap();
        assert!(slices.is_empty());
        assert_eq!(slices.len(), 0);
        assert_eq!(iter_views(&[], 5).count(), 0);
    }
}
