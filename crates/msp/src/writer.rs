use std::fs::{self, File};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

use crate::{encode_superkmer, MspError, PartitionRouter, PartitionStats, Result, Superkmer};

/// Writes superkmers into a directory of encoded partition files
/// (`part-00000.skm` …) plus a `manifest.txt` describing them.
///
/// One writer owns all `n` partition files — the paper notes the OS
/// file-handle cap (1000 on their platform) as the practical limit on `n`.
///
/// # Examples
///
/// ```no_run
/// use dna::PackedSeq;
/// use msp::{PartitionWriter, SuperkmerScanner};
///
/// # fn main() -> msp::Result<()> {
/// let scanner = SuperkmerScanner::new(27, 11)?;
/// let mut writer = PartitionWriter::create("/tmp/parts", 64, 27, 11)?;
/// let read = PackedSeq::from_ascii(b"...");
/// for sk in scanner.scan(&read) {
///     writer.write(&sk)?;
/// }
/// let manifest = writer.finish()?;
/// assert_eq!(manifest.num_partitions(), 64);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct PartitionWriter {
    dir: PathBuf,
    k: usize,
    p: usize,
    router: PartitionRouter,
    files: Vec<BufWriter<File>>,
    stats: Vec<PartitionStats>,
    buf: Vec<u8>,
}

impl PartitionWriter {
    /// Creates the directory (if needed) and opens `num_partitions` fresh
    /// partition files inside it.
    ///
    /// # Errors
    ///
    /// Returns [`MspError::NoPartitions`] for `num_partitions == 0`,
    /// [`MspError::InvalidParams`] for bad `k`/`p`, or an I/O error if the
    /// directory or files cannot be created.
    pub fn create(dir: impl AsRef<Path>, num_partitions: usize, k: usize, p: usize) -> Result<PartitionWriter> {
        if p < 1 || p > k || k > dna::MAX_K {
            return Err(MspError::InvalidParams { k, p });
        }
        let router = PartitionRouter::new(num_partitions)?;
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let mut files = Vec::with_capacity(num_partitions);
        for i in 0..num_partitions {
            files.push(BufWriter::new(File::create(partition_path(&dir, i))?));
        }
        Ok(PartitionWriter {
            dir,
            k,
            p,
            router,
            files,
            stats: vec![PartitionStats::default(); num_partitions],
            buf: Vec::with_capacity(256),
        })
    }

    /// Routes one superkmer by its minimizer and appends it to that
    /// partition's file.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn write(&mut self, sk: &Superkmer) -> Result<()> {
        let idx = self.router.route(sk);
        self.write_to(idx, sk)
    }

    /// Appends a superkmer to an explicit partition — used by the pipeline
    /// when routing happened on another processor (e.g. the simulated GPU
    /// computed superkmer IDs in bulk).
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    ///
    /// # Panics
    ///
    /// Panics if `partition` is out of range.
    pub fn write_to(&mut self, partition: usize, sk: &Superkmer) -> Result<()> {
        self.buf.clear();
        encode_superkmer(sk, &mut self.buf);
        self.files[partition].write_all(&self.buf)?;
        let s = &mut self.stats[partition];
        s.superkmers += 1;
        s.kmers += sk.kmer_count() as u64;
        s.bytes += self.buf.len() as u64;
        Ok(())
    }

    /// Appends already-encoded superkmer records to a partition file. The
    /// pipeline's compute stage encodes on whichever processor ran the
    /// scan; the output stage only appends bytes. `superkmers` and `kmers`
    /// are the record counts the caller tallied while encoding.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    ///
    /// # Panics
    ///
    /// Panics if `partition` is out of range.
    pub fn append_encoded(
        &mut self,
        partition: usize,
        bytes: &[u8],
        superkmers: u64,
        kmers: u64,
    ) -> Result<()> {
        self.files[partition].write_all(bytes)?;
        let s = &mut self.stats[partition];
        s.superkmers += superkmers;
        s.kmers += kmers;
        s.bytes += bytes.len() as u64;
        Ok(())
    }

    /// Flushes every file, writes `manifest.txt`, and returns the manifest.
    ///
    /// # Errors
    ///
    /// Propagates flush/write failures.
    pub fn finish(mut self) -> Result<PartitionManifest> {
        for f in &mut self.files {
            f.flush()?;
        }
        let manifest = PartitionManifest {
            dir: self.dir.clone(),
            k: self.k,
            p: self.p,
            stats: std::mem::take(&mut self.stats),
        };
        manifest.save()?;
        Ok(manifest)
    }
}

/// Metadata for a directory of superkmer partitions: the `k`/`p`
/// parameters and per-partition statistics. Persisted as a small text
/// file so Step 2 (possibly a different process) can size its hash tables
/// from the kmer counts without rescanning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionManifest {
    dir: PathBuf,
    k: usize,
    p: usize,
    stats: Vec<PartitionStats>,
}

impl PartitionManifest {
    /// The directory holding the partition files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// K-mer length the partitions were cut for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Minimizer length used for routing.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.stats.len()
    }

    /// Per-partition statistics.
    pub fn stats(&self) -> &[PartitionStats] {
        &self.stats
    }

    /// Path of partition `index`'s file.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn partition_path(&self, index: usize) -> PathBuf {
        assert!(index < self.stats.len(), "partition {index} out of range");
        partition_path(&self.dir, index)
    }

    /// Total kmers across all partitions.
    pub fn total_kmers(&self) -> u64 {
        self.stats.iter().map(|s| s.kmers).sum()
    }

    /// Total superkmers across all partitions.
    pub fn total_superkmers(&self) -> u64 {
        self.stats.iter().map(|s| s.superkmers).sum()
    }

    /// Total encoded bytes across all partitions.
    pub fn total_bytes(&self) -> u64 {
        self.stats.iter().map(|s| s.bytes).sum()
    }

    fn manifest_path(dir: &Path) -> PathBuf {
        dir.join("manifest.txt")
    }

    /// Writes `manifest.txt` into the partition directory.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save(&self) -> Result<()> {
        let mut f = BufWriter::new(File::create(Self::manifest_path(&self.dir))?);
        writeln!(f, "parahash-msp-manifest v1")?;
        writeln!(f, "k {}", self.k)?;
        writeln!(f, "p {}", self.p)?;
        writeln!(f, "partitions {}", self.stats.len())?;
        for (i, s) in self.stats.iter().enumerate() {
            writeln!(f, "part {i} {} {} {}", s.superkmers, s.kmers, s.bytes)?;
        }
        f.flush()?;
        Ok(())
    }

    /// Loads the manifest from a partition directory.
    ///
    /// # Errors
    ///
    /// Returns [`MspError::CorruptRecord`] on a malformed manifest and
    /// [`MspError::Io`] if the file cannot be read.
    pub fn load(dir: impl AsRef<Path>) -> Result<PartitionManifest> {
        let dir = dir.as_ref().to_path_buf();
        let file = BufReader::new(File::open(Self::manifest_path(&dir))?);
        let corrupt = |line: u64, reason: String| MspError::CorruptRecord { offset: line, reason };
        let mut lines = file.lines();
        let mut next = |n: u64| -> Result<String> {
            lines
                .next()
                .transpose()?
                .ok_or_else(|| corrupt(n, "manifest truncated".into()))
        };
        let magic = next(0)?;
        if magic != "parahash-msp-manifest v1" {
            return Err(corrupt(0, format!("bad magic {magic:?}")));
        }
        let field = |line: String, n: u64, name: &str| -> Result<usize> {
            let rest = line
                .strip_prefix(name)
                .and_then(|r| r.strip_prefix(' '))
                .ok_or_else(|| corrupt(n, format!("expected '{name} <value>', got {line:?}")))?;
            rest.trim().parse().map_err(|e| corrupt(n, format!("bad {name}: {e}")))
        };
        let k = field(next(1)?, 1, "k")?;
        let p = field(next(2)?, 2, "p")?;
        let n = field(next(3)?, 3, "partitions")?;
        let mut stats = Vec::with_capacity(n);
        for i in 0..n {
            let line = next(4 + i as u64)?;
            let parts: Vec<&str> = line.split_whitespace().collect();
            if parts.len() != 5 || parts[0] != "part" || parts[1] != i.to_string() {
                return Err(corrupt(4 + i as u64, format!("bad partition line {line:?}")));
            }
            let parse = |s: &str| -> Result<u64> {
                s.parse().map_err(|e| corrupt(4 + i as u64, format!("bad count: {e}")))
            };
            stats.push(PartitionStats {
                superkmers: parse(parts[2])?,
                kmers: parse(parts[3])?,
                bytes: parse(parts[4])?,
            });
        }
        Ok(PartitionManifest { dir, k, p, stats })
    }
}

fn partition_path(dir: &Path, index: usize) -> PathBuf {
    dir.join(format!("part-{index:05}.skm"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SuperkmerScanner;
    use dna::PackedSeq;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("msp-writer-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn write_finish_load_roundtrip() {
        let dir = tmpdir("roundtrip");
        let scanner = SuperkmerScanner::new(7, 4).unwrap();
        let mut w = PartitionWriter::create(&dir, 8, 7, 4).unwrap();
        let read = PackedSeq::from_ascii(b"ACGTTGCATGGACCAGTTACGGATCAGGCATTAGCCAGT");
        let sks = scanner.scan(&read);
        for sk in &sks {
            w.write(sk).unwrap();
        }
        let manifest = w.finish().unwrap();
        assert_eq!(manifest.total_superkmers(), sks.len() as u64);
        assert_eq!(manifest.total_kmers(), (read.len() - 7 + 1) as u64);
        assert!(manifest.total_bytes() > 0);

        let loaded = PartitionManifest::load(&dir).unwrap();
        assert_eq!(loaded, manifest);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_encoded_matches_write() {
        let dir_a = tmpdir("enc-a");
        let dir_b = tmpdir("enc-b");
        let scanner = SuperkmerScanner::new(5, 3).unwrap();
        let read = PackedSeq::from_ascii(b"TGATGGATGAACCAGTTTGA");
        let sks = scanner.scan(&read);

        let mut direct = PartitionWriter::create(&dir_a, 2, 5, 3).unwrap();
        let mut raw = PartitionWriter::create(&dir_b, 2, 5, 3).unwrap();
        let router = crate::PartitionRouter::new(2).unwrap();
        for sk in &sks {
            direct.write(sk).unwrap();
            let mut buf = Vec::new();
            crate::encode_superkmer(sk, &mut buf);
            raw.append_encoded(router.route(sk), &buf, 1, sk.kmer_count() as u64).unwrap();
        }
        let ma = direct.finish().unwrap();
        let mb = raw.finish().unwrap();
        assert_eq!(ma.stats(), mb.stats());
        for i in 0..2 {
            assert_eq!(fs::read(ma.partition_path(i)).unwrap(), fs::read(mb.partition_path(i)).unwrap());
        }
        fs::remove_dir_all(&dir_a).unwrap();
        fs::remove_dir_all(&dir_b).unwrap();
    }

    #[test]
    fn empty_partitions_produce_empty_files() {
        let dir = tmpdir("empty");
        let w = PartitionWriter::create(&dir, 4, 5, 3).unwrap();
        let manifest = w.finish().unwrap();
        for i in 0..4 {
            let meta = fs::metadata(manifest.partition_path(i)).unwrap();
            assert_eq!(meta.len(), 0);
        }
        assert_eq!(manifest.total_kmers(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn invalid_params_rejected() {
        let dir = tmpdir("invalid");
        assert!(matches!(PartitionWriter::create(&dir, 0, 5, 3), Err(MspError::NoPartitions)));
        assert!(matches!(PartitionWriter::create(&dir, 4, 3, 5), Err(MspError::InvalidParams { .. })));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_manifest_is_rejected() {
        let dir = tmpdir("corrupt");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("manifest.txt"), "not a manifest\n").unwrap();
        assert!(matches!(PartitionManifest::load(&dir), Err(MspError::CorruptRecord { .. })));
        fs::write(dir.join("manifest.txt"), "parahash-msp-manifest v1\nk 27\np 11\npartitions 2\npart 0 1 2 3\n").unwrap();
        let err = PartitionManifest::load(&dir).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_manifest_is_io_error() {
        let dir = tmpdir("missing");
        fs::create_dir_all(&dir).unwrap();
        assert!(matches!(PartitionManifest::load(&dir), Err(MspError::Io(_))));
        fs::remove_dir_all(&dir).unwrap();
    }
}
