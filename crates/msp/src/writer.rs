use std::fs::{self, File};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

use pipeline::{commit, failpoint};

use crate::frame::{crc32, DEFAULT_FRAME_TARGET};
use crate::{encode_superkmer, MspError, PartitionRouter, PartitionStats, Result, Superkmer};

/// Writes superkmers into a directory of encoded partition files
/// (`part-00000.skm` …) plus a `manifest.txt` describing them.
///
/// Records are buffered per partition and flushed as CRC32-checksummed
/// frames (see [`crate::frame`]'s module docs) cut at record boundaries,
/// so readers detect interior bit-flips, not just truncation, while the
/// zero-copy Step-2 replay still borrows records straight from the file
/// buffer.
///
/// One writer owns all `n` partition files — the paper notes the OS
/// file-handle cap (1000 on their platform) as the practical limit on `n`.
///
/// # Examples
///
/// ```no_run
/// use dna::PackedSeq;
/// use msp::{PartitionWriter, SuperkmerScanner};
///
/// # fn main() -> msp::Result<()> {
/// let scanner = SuperkmerScanner::new(27, 11)?;
/// let mut writer = PartitionWriter::create("/tmp/parts", 64, 27, 11)?;
/// let read = PackedSeq::from_ascii(b"...");
/// for sk in scanner.scan(&read) {
///     writer.write(&sk)?;
/// }
/// let manifest = writer.finish()?;
/// assert_eq!(manifest.num_partitions(), 64);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct PartitionWriter {
    dir: PathBuf,
    k: usize,
    p: usize,
    router: PartitionRouter,
    files: Vec<BufWriter<File>>,
    stats: Vec<PartitionStats>,
    buf: Vec<u8>,
    /// Whole records awaiting their next checksummed frame, per partition.
    pending: Vec<Vec<u8>>,
    /// Flush a partition's pending buffer once it reaches this many bytes.
    frame_target: usize,
    /// Run-scope token carried by the staged `*.tmp` names (empty =
    /// unscoped). See [`pipeline::commit::tmp_path_scoped`].
    run_token: String,
}

impl PartitionWriter {
    /// Creates the directory (if needed) and opens `num_partitions` fresh
    /// partition files inside it.
    ///
    /// # Errors
    ///
    /// Returns [`MspError::NoPartitions`] for `num_partitions == 0`,
    /// [`MspError::InvalidParams`] for bad `k`/`p`, or an I/O error if the
    /// directory or files cannot be created.
    pub fn create(dir: impl AsRef<Path>, num_partitions: usize, k: usize, p: usize) -> Result<PartitionWriter> {
        PartitionWriter::create_scoped(dir, num_partitions, k, p, "")
    }

    /// [`create`](Self::create) with a run-scope token: the long-lived
    /// staging files are named `part-NNNNN.skm.{token}.tmp`, so a resume
    /// of *this* run can reclaim them while sweeps scoped to other runs
    /// in the same directory leave them alone
    /// ([`pipeline::commit::sweep_tmp_scoped`]). An empty token keeps the
    /// plain `.tmp` names.
    ///
    /// # Errors
    ///
    /// Same as [`create`](Self::create).
    pub fn create_scoped(
        dir: impl AsRef<Path>,
        num_partitions: usize,
        k: usize,
        p: usize,
        run_token: &str,
    ) -> Result<PartitionWriter> {
        if p < 1 || p > k || k > dna::MAX_K {
            return Err(MspError::InvalidParams { k, p });
        }
        let router = PartitionRouter::new(num_partitions)?;
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        // Partition files are staged as `*.skm[.{token}].tmp` and only
        // renamed to their final names (fsync file, rename, fsync dir) in
        // [`finish`](Self::finish) — a crash mid-run can never leave a
        // half-written file at a name recovery would trust.
        let mut files = Vec::with_capacity(num_partitions);
        for i in 0..num_partitions {
            let staged = commit::tmp_path_scoped(&partition_path(&dir, i), run_token);
            files.push(BufWriter::new(File::create(staged)?));
        }
        Ok(PartitionWriter {
            dir,
            k,
            p,
            router,
            files,
            stats: vec![PartitionStats::default(); num_partitions],
            buf: Vec::with_capacity(256),
            pending: vec![Vec::new(); num_partitions],
            frame_target: DEFAULT_FRAME_TARGET,
            run_token: run_token.to_owned(),
        })
    }

    /// Overrides the frame flush threshold (default
    /// [`DEFAULT_FRAME_TARGET`]). Smaller targets produce more frames —
    /// useful for tests that need multi-frame files from tiny inputs.
    pub fn set_frame_target(&mut self, bytes: usize) {
        self.frame_target = bytes.max(1);
    }

    /// Routes one superkmer by its minimizer and appends it to that
    /// partition's file.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn write(&mut self, sk: &Superkmer) -> Result<()> {
        let idx = self.router.route(sk);
        self.write_to(idx, sk)
    }

    /// Appends a superkmer to an explicit partition — used by the pipeline
    /// when routing happened on another processor (e.g. the simulated GPU
    /// computed superkmer IDs in bulk).
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    ///
    /// # Panics
    ///
    /// Panics if `partition` is out of range.
    pub fn write_to(&mut self, partition: usize, sk: &Superkmer) -> Result<()> {
        let mut buf = std::mem::take(&mut self.buf);
        buf.clear();
        encode_superkmer(sk, &mut buf);
        let result = self.push_bytes(partition, &buf, 1, sk.kmer_count() as u64);
        self.buf = buf;
        result
    }

    /// Appends already-encoded superkmer records to a partition file. The
    /// pipeline's compute stage encodes on whichever processor ran the
    /// scan; the output stage only appends bytes. `superkmers` and `kmers`
    /// are the record counts the caller tallied while encoding.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    ///
    /// # Panics
    ///
    /// Panics if `partition` is out of range.
    pub fn append_encoded(
        &mut self,
        partition: usize,
        bytes: &[u8],
        superkmers: u64,
        kmers: u64,
    ) -> Result<()> {
        self.push_bytes(partition, bytes, superkmers, kmers)
    }

    /// Appends whole records to a partition's pending buffer, tallies the
    /// stats (payload bytes, excluding frame headers), and flushes a
    /// checksummed frame once the buffer crosses the target.
    fn push_bytes(
        &mut self,
        partition: usize,
        bytes: &[u8],
        superkmers: u64,
        kmers: u64,
    ) -> Result<()> {
        self.pending[partition].extend_from_slice(bytes);
        let s = &mut self.stats[partition];
        s.superkmers += superkmers;
        s.kmers += kmers;
        s.bytes += bytes.len() as u64;
        if self.pending[partition].len() >= self.frame_target {
            self.flush_frame(partition)?;
        }
        Ok(())
    }

    /// Writes the partition's pending records as one checksummed frame.
    fn flush_frame(&mut self, partition: usize) -> Result<()> {
        let payload = &self.pending[partition];
        if payload.is_empty() {
            return Ok(());
        }
        failpoint::hit("msp.frame.append")?;
        let file = &mut self.files[partition];
        file.write_all(&(payload.len() as u32).to_le_bytes())?;
        file.write_all(&crc32(payload).to_le_bytes())?;
        file.write_all(payload)?;
        self.pending[partition].clear();
        Ok(())
    }

    /// Flushes every pending frame and file, atomically commits each
    /// staged `*.skm.tmp` to its final `part-NNNNN.skm` name (fsync,
    /// rename, dir fsync), writes `manifest.txt` (also atomically), and
    /// returns the manifest. Until this returns, the directory holds
    /// only obviously-uncommitted `*.tmp` files and no manifest — a
    /// crash anywhere before the manifest commit leaves nothing a later
    /// run could mistake for a complete Step-1 output.
    ///
    /// # Errors
    ///
    /// Propagates flush/fsync/rename failures.
    pub fn finish(mut self) -> Result<PartitionManifest> {
        for i in 0..self.files.len() {
            self.flush_frame(i)?;
        }
        for (i, f) in self.files.drain(..).enumerate() {
            let file = f.into_inner().map_err(|e| MspError::Io(e.into()))?;
            file.sync_all()?;
            drop(file);
            let path = partition_path(&self.dir, i);
            fs::rename(commit::tmp_path_scoped(&path, &self.run_token), &path)?;
        }
        commit::sync_dir(&self.dir);
        let manifest = PartitionManifest {
            dir: self.dir.clone(),
            k: self.k,
            p: self.p,
            stats: std::mem::take(&mut self.stats),
            quarantined: Vec::new(),
            residency: None,
            sub_splits: Vec::new(),
        };
        manifest.save()?;
        Ok(manifest)
    }
}

/// One partition that repeatedly failed in Step 2 and was set aside
/// instead of aborting the whole run (non-strict mode). Recorded in the
/// manifest so downstream consumers know the graph is missing its
/// k-mers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedPartition {
    /// Which partition failed.
    pub index: usize,
    /// Human-readable description of the final failure.
    pub reason: String,
}
/// Metadata for a directory of superkmer partitions: the `k`/`p`
/// parameters and per-partition statistics. Persisted as a small text
/// file so Step 2 (possibly a different process) can size its hash tables
/// from the kmer counts without rescanning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionManifest {
    dir: PathBuf,
    k: usize,
    p: usize,
    stats: Vec<PartitionStats>,
    quarantined: Vec<QuarantinedPartition>,
    /// `Some` for manifests written by the fused pipeline's
    /// [`PartitionStore`](crate::PartitionStore): `residency[i]` says
    /// whether partition `i` stayed in memory (`true`) or was spilled to
    /// its `part-NNNNN.skm` file (`false`). `None` for classic all-disk
    /// manifests, where every partition is implicitly on disk.
    residency: Option<Vec<bool>>,
    /// `(partition, fanout)` marks left by out-of-core Step 2: partition
    /// `i`'s projected table busted the memory budget and its records
    /// were split into `fanout` second-level sub-partitions
    /// ([`split_framed`](crate::split_framed)) before building. Purely
    /// informational for resume and reporting — the merged subgraph is
    /// byte-identical either way.
    sub_splits: Vec<(usize, usize)>,
}

impl PartitionManifest {
    /// Assembles a manifest from parts — used by the sibling
    /// [`PartitionStore`](crate::PartitionStore) module, which tracks its
    /// own stats and residency.
    pub(crate) fn from_parts(
        dir: PathBuf,
        k: usize,
        p: usize,
        stats: Vec<PartitionStats>,
        quarantined: Vec<QuarantinedPartition>,
        residency: Option<Vec<bool>>,
    ) -> PartitionManifest {
        PartitionManifest { dir, k, p, stats, quarantined, residency, sub_splits: Vec::new() }
    }
    /// The directory holding the partition files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// K-mer length the partitions were cut for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Minimizer length used for routing.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.stats.len()
    }

    /// Per-partition statistics.
    pub fn stats(&self) -> &[PartitionStats] {
        &self.stats
    }

    /// Partitions that were set aside after repeated Step-2 failures
    /// (non-strict mode). Empty for a healthy run.
    pub fn quarantined(&self) -> &[QuarantinedPartition] {
        &self.quarantined
    }

    /// Per-partition residency recorded by the fused pipeline's
    /// [`PartitionStore`](crate::PartitionStore) (`true` = stayed in
    /// memory, `false` = spilled to disk), or `None` for classic all-disk
    /// manifests.
    pub fn residency(&self) -> Option<&[bool]> {
        self.residency.as_deref()
    }

    /// Whether partition `index` has been quarantined.
    pub fn is_quarantined(&self, index: usize) -> bool {
        self.quarantined.iter().any(|q| q.index == index)
    }

    /// Records partition `index` as quarantined with a human-readable
    /// `reason`. Call [`save`](Self::save) afterwards to persist the mark.
    /// Re-quarantining the same index updates its reason in place.
    pub fn quarantine(&mut self, index: usize, reason: impl Into<String>) {
        let reason = reason.into();
        if let Some(q) = self.quarantined.iter_mut().find(|q| q.index == index) {
            q.reason = reason;
        } else {
            self.quarantined.push(QuarantinedPartition { index, reason });
        }
    }

    /// The sub-partition fanout recorded for partition `index`, if
    /// out-of-core Step 2 had to split it (`None` = built unsplit).
    pub fn sub_split(&self, index: usize) -> Option<usize> {
        self.sub_splits.iter().find(|(i, _)| *i == index).map(|&(_, fanout)| fanout)
    }

    /// Records that partition `index` was built through `fanout`
    /// second-level sub-partitions. Call [`save`](Self::save) afterwards
    /// to persist the mark. Re-marking the same index updates its fanout
    /// in place.
    pub fn set_sub_split(&mut self, index: usize, fanout: usize) {
        match self.sub_splits.iter_mut().find(|(i, _)| *i == index) {
            Some(entry) => entry.1 = fanout,
            None => self.sub_splits.push((index, fanout)),
        }
    }

    /// Path of partition `index`'s file.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn partition_path(&self, index: usize) -> PathBuf {
        assert!(index < self.stats.len(), "partition {index} out of range");
        partition_path(&self.dir, index)
    }

    /// Total kmers across all partitions.
    pub fn total_kmers(&self) -> u64 {
        self.stats.iter().map(|s| s.kmers).sum()
    }

    /// Total superkmers across all partitions.
    pub fn total_superkmers(&self) -> u64 {
        self.stats.iter().map(|s| s.superkmers).sum()
    }

    /// Total encoded bytes across all partitions.
    pub fn total_bytes(&self) -> u64 {
        self.stats.iter().map(|s| s.bytes).sum()
    }

    fn manifest_path(dir: &Path) -> PathBuf {
        dir.join("manifest.txt")
    }

    /// Writes `manifest.txt` into the partition directory, atomically:
    /// the full contents are staged to `manifest.txt.tmp`, fsynced, and
    /// renamed over the old manifest, so a reader (or a resumed run)
    /// sees either the previous manifest or the new one — never a torn
    /// mixture. Quarantine marks are kept deduplicated by
    /// [`quarantine`](Self::quarantine), so repeated non-strict runs
    /// rewrite one line per partition instead of appending duplicates.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save(&self) -> Result<()> {
        let mut out = Vec::with_capacity(64 + 32 * self.stats.len());
        writeln!(out, "parahash-msp-manifest v1")?;
        writeln!(out, "k {}", self.k)?;
        writeln!(out, "p {}", self.p)?;
        writeln!(out, "partitions {}", self.stats.len())?;
        for (i, s) in self.stats.iter().enumerate() {
            writeln!(out, "part {i} {} {} {}", s.superkmers, s.kmers, s.bytes)?;
        }
        if let Some(residency) = &self.residency {
            for (i, resident) in residency.iter().enumerate() {
                writeln!(out, "{} {i}", if *resident { "resident" } else { "spilled" })?;
            }
        }
        for q in &self.quarantined {
            // Reasons are free text; fold any newlines so the line-oriented
            // format stays parseable.
            let reason = q.reason.replace(['\n', '\r'], " ");
            writeln!(out, "quarantined {} {reason}", q.index)?;
        }
        for &(i, fanout) in &self.sub_splits {
            writeln!(out, "sub-split {i} {fanout}")?;
        }
        commit::commit_bytes(&Self::manifest_path(&self.dir), &out)?;
        Ok(())
    }

    /// Loads the manifest from a partition directory.
    ///
    /// # Errors
    ///
    /// Returns [`MspError::CorruptRecord`] on a malformed manifest and
    /// [`MspError::Io`] if the file cannot be read.
    pub fn load(dir: impl AsRef<Path>) -> Result<PartitionManifest> {
        let dir = dir.as_ref().to_path_buf();
        let file = BufReader::new(File::open(Self::manifest_path(&dir))?);
        let corrupt = |line: u64, reason: String| MspError::CorruptRecord { offset: line, reason };
        let mut lines = file.lines();
        let mut next = |n: u64| -> Result<String> {
            lines
                .next()
                .transpose()?
                .ok_or_else(|| corrupt(n, "manifest truncated".into()))
        };
        let magic = next(0)?;
        if magic != "parahash-msp-manifest v1" {
            return Err(corrupt(0, format!("bad magic {magic:?}")));
        }
        let field = |line: String, n: u64, name: &str| -> Result<usize> {
            let rest = line
                .strip_prefix(name)
                .and_then(|r| r.strip_prefix(' '))
                .ok_or_else(|| corrupt(n, format!("expected '{name} <value>', got {line:?}")))?;
            rest.trim().parse().map_err(|e| corrupt(n, format!("bad {name}: {e}")))
        };
        let k = field(next(1)?, 1, "k")?;
        let p = field(next(2)?, 2, "p")?;
        let n = field(next(3)?, 3, "partitions")?;
        let mut stats = Vec::with_capacity(n);
        for i in 0..n {
            let line = next(4 + i as u64)?;
            let parts: Vec<&str> = line.split_whitespace().collect();
            if parts.len() != 5 || parts[0] != "part" || parts[1] != i.to_string() {
                return Err(corrupt(4 + i as u64, format!("bad partition line {line:?}")));
            }
            let parse = |s: &str| -> Result<u64> {
                s.parse().map_err(|e| corrupt(4 + i as u64, format!("bad count: {e}")))
            };
            stats.push(PartitionStats {
                superkmers: parse(parts[2])?,
                kmers: parse(parts[3])?,
                bytes: parse(parts[4])?,
            });
        }
        // Optional trailing lines, in any order: `resident <i>` /
        // `spilled <i>` residency marks (fused-pipeline manifests),
        // `quarantined <i> <reason>` marks, and `sub-split <i> <fanout>`
        // out-of-core marks. All are absent in classic healthy-run
        // manifests.
        let mut quarantined = Vec::new();
        let mut residency: Option<Vec<bool>> = None;
        let mut sub_splits: Vec<(usize, usize)> = Vec::new();
        let mut lineno = 4 + n as u64;
        for line in lines {
            let line = line?;
            if line.trim().is_empty() {
                lineno += 1;
                continue;
            }
            let index_in_range = |idx: &str, what: &str, lineno: u64| -> Result<usize> {
                let index: usize = idx
                    .parse()
                    .map_err(|e| corrupt(lineno, format!("bad {what} index: {e}")))?;
                if index >= n {
                    return Err(corrupt(
                        lineno,
                        format!("{what} index {index} out of range (partitions {n})"),
                    ));
                }
                Ok(index)
            };
            if let Some(rest) = line.strip_prefix("quarantined ") {
                let (idx, reason) = rest.split_once(' ').unwrap_or((rest, ""));
                let index = index_in_range(idx, "quarantined", lineno)?;
                // Merge duplicate marks for the same partition (older
                // manifests could accumulate one line per non-strict
                // run); the last line wins, matching `quarantine`'s
                // update-in-place semantics.
                match quarantined.iter_mut().find(|q: &&mut QuarantinedPartition| q.index == index)
                {
                    Some(q) => q.reason = reason.to_string(),
                    None => {
                        quarantined.push(QuarantinedPartition { index, reason: reason.to_string() })
                    }
                }
            } else if let Some(rest) = line.strip_prefix("resident ") {
                let index = index_in_range(rest.trim(), "resident", lineno)?;
                residency.get_or_insert_with(|| vec![false; n])[index] = true;
            } else if let Some(rest) = line.strip_prefix("spilled ") {
                let index = index_in_range(rest.trim(), "spilled", lineno)?;
                residency.get_or_insert_with(|| vec![false; n])[index] = false;
            } else if let Some(rest) = line.strip_prefix("sub-split ") {
                let (idx, fanout) = rest.trim().split_once(' ').ok_or_else(|| {
                    corrupt(lineno, format!("expected 'sub-split <i> <fanout>', got {line:?}"))
                })?;
                let index = index_in_range(idx, "sub-split", lineno)?;
                let fanout: usize = fanout
                    .trim()
                    .parse()
                    .map_err(|e| corrupt(lineno, format!("bad sub-split fanout: {e}")))?;
                if fanout < 2 {
                    return Err(corrupt(lineno, format!("sub-split fanout {fanout} below 2")));
                }
                match sub_splits.iter_mut().find(|(i, _)| *i == index) {
                    Some(entry) => entry.1 = fanout,
                    None => sub_splits.push((index, fanout)),
                }
            } else {
                return Err(corrupt(lineno, format!("unexpected trailing line {line:?}")));
            }
            lineno += 1;
        }
        Ok(PartitionManifest { dir, k, p, stats, quarantined, residency, sub_splits })
    }
}

pub(crate) fn partition_path(dir: &Path, index: usize) -> PathBuf {
    dir.join(format!("part-{index:05}.skm"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SuperkmerScanner;
    use dna::PackedSeq;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("msp-writer-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn write_finish_load_roundtrip() {
        let dir = tmpdir("roundtrip");
        let scanner = SuperkmerScanner::new(7, 4).unwrap();
        let mut w = PartitionWriter::create(&dir, 8, 7, 4).unwrap();
        let read = PackedSeq::from_ascii(b"ACGTTGCATGGACCAGTTACGGATCAGGCATTAGCCAGT");
        let sks = scanner.scan(&read);
        for sk in &sks {
            w.write(sk).unwrap();
        }
        let manifest = w.finish().unwrap();
        assert_eq!(manifest.total_superkmers(), sks.len() as u64);
        assert_eq!(manifest.total_kmers(), (read.len() - 7 + 1) as u64);
        assert!(manifest.total_bytes() > 0);

        let loaded = PartitionManifest::load(&dir).unwrap();
        assert_eq!(loaded, manifest);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_encoded_matches_write() {
        let dir_a = tmpdir("enc-a");
        let dir_b = tmpdir("enc-b");
        let scanner = SuperkmerScanner::new(5, 3).unwrap();
        let read = PackedSeq::from_ascii(b"TGATGGATGAACCAGTTTGA");
        let sks = scanner.scan(&read);

        let mut direct = PartitionWriter::create(&dir_a, 2, 5, 3).unwrap();
        let mut raw = PartitionWriter::create(&dir_b, 2, 5, 3).unwrap();
        let router = crate::PartitionRouter::new(2).unwrap();
        for sk in &sks {
            direct.write(sk).unwrap();
            let mut buf = Vec::new();
            crate::encode_superkmer(sk, &mut buf);
            raw.append_encoded(router.route(sk), &buf, 1, sk.kmer_count() as u64).unwrap();
        }
        let ma = direct.finish().unwrap();
        let mb = raw.finish().unwrap();
        assert_eq!(ma.stats(), mb.stats());
        for i in 0..2 {
            assert_eq!(fs::read(ma.partition_path(i)).unwrap(), fs::read(mb.partition_path(i)).unwrap());
        }
        fs::remove_dir_all(&dir_a).unwrap();
        fs::remove_dir_all(&dir_b).unwrap();
    }

    #[test]
    fn empty_partitions_produce_empty_files() {
        let dir = tmpdir("empty");
        let w = PartitionWriter::create(&dir, 4, 5, 3).unwrap();
        let manifest = w.finish().unwrap();
        for i in 0..4 {
            let meta = fs::metadata(manifest.partition_path(i)).unwrap();
            assert_eq!(meta.len(), 0);
        }
        assert_eq!(manifest.total_kmers(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn invalid_params_rejected() {
        let dir = tmpdir("invalid");
        assert!(matches!(PartitionWriter::create(&dir, 0, 5, 3), Err(MspError::NoPartitions)));
        assert!(matches!(PartitionWriter::create(&dir, 4, 3, 5), Err(MspError::InvalidParams { .. })));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_manifest_is_rejected() {
        let dir = tmpdir("corrupt");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("manifest.txt"), "not a manifest\n").unwrap();
        assert!(matches!(PartitionManifest::load(&dir), Err(MspError::CorruptRecord { .. })));
        fs::write(dir.join("manifest.txt"), "parahash-msp-manifest v1\nk 27\np 11\npartitions 2\npart 0 1 2 3\n").unwrap();
        let err = PartitionManifest::load(&dir).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tiny_frame_target_produces_multiple_valid_frames() {
        let dir = tmpdir("multiframe");
        let scanner = SuperkmerScanner::new(7, 4).unwrap();
        let mut w = PartitionWriter::create(&dir, 1, 7, 4).unwrap();
        w.set_frame_target(1); // flush a frame after every record
        let read = PackedSeq::from_ascii(b"ACGTTGCATGGACCAGTTACGGATCAGGCATTAGCCAGT");
        let sks = scanner.scan(&read);
        for sk in &sks {
            w.write_to(0, sk).unwrap();
        }
        let manifest = w.finish().unwrap();
        let bytes = fs::read(manifest.partition_path(0)).unwrap();
        let payloads = crate::frame_payloads(&bytes).unwrap();
        assert_eq!(payloads.len(), sks.len(), "one frame per record");
        // Stats count payload bytes only, never framing overhead.
        let payload_total: usize = payloads.iter().map(|p| p.len()).sum();
        assert_eq!(manifest.total_bytes(), payload_total as u64);
        assert_eq!(
            bytes.len(),
            payload_total + payloads.len() * crate::FRAME_HEADER_LEN
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quarantine_roundtrips_through_save_and_load() {
        let dir = tmpdir("quarantine");
        let w = PartitionWriter::create(&dir, 4, 5, 3).unwrap();
        let mut manifest = w.finish().unwrap();
        assert!(manifest.quarantined().is_empty());
        manifest.quarantine(2, "i/o error: simulated disk fault (attempt 3)");
        manifest.quarantine(0, "first reason");
        manifest.quarantine(0, "checksum mismatch after retries"); // updates in place
        manifest.save().unwrap();

        let loaded = PartitionManifest::load(&dir).unwrap();
        assert_eq!(loaded.quarantined(), manifest.quarantined());
        assert!(loaded.is_quarantined(0));
        assert!(loaded.is_quarantined(2));
        assert!(!loaded.is_quarantined(1));
        assert_eq!(
            loaded.quarantined()[1].reason,
            "checksum mismatch after retries"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sub_split_marks_roundtrip_through_save_and_load() {
        let dir = tmpdir("subsplit");
        let w = PartitionWriter::create(&dir, 4, 5, 3).unwrap();
        let mut manifest = w.finish().unwrap();
        assert_eq!(manifest.sub_split(1), None);
        manifest.set_sub_split(1, 4);
        manifest.set_sub_split(3, 2);
        manifest.set_sub_split(1, 8); // updates in place
        // Sub-split marks coexist with quarantine marks.
        manifest.quarantine(2, "simulated");
        manifest.save().unwrap();

        let loaded = PartitionManifest::load(&dir).unwrap();
        assert_eq!(loaded, manifest);
        assert_eq!(loaded.sub_split(1), Some(8));
        assert_eq!(loaded.sub_split(3), Some(2));
        assert_eq!(loaded.sub_split(0), None);
        assert!(loaded.is_quarantined(2));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn malformed_sub_split_lines_are_rejected() {
        let dir = tmpdir("subsplit-bad");
        fs::create_dir_all(&dir).unwrap();
        let head = "parahash-msp-manifest v1\nk 5\np 3\npartitions 1\npart 0 0 0 0\n";
        for bad in ["sub-split 0\n", "sub-split 9 4\n", "sub-split 0 1\n", "sub-split 0 x\n"] {
            fs::write(dir.join("manifest.txt"), format!("{head}{bad}")).unwrap();
            assert!(
                matches!(PartitionManifest::load(&dir), Err(MspError::CorruptRecord { .. })),
                "accepted {bad:?}"
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn partitions_are_staged_as_tmp_until_finish() {
        let dir = tmpdir("staged");
        let scanner = SuperkmerScanner::new(7, 4).unwrap();
        let mut w = PartitionWriter::create(&dir, 2, 7, 4).unwrap();
        let read = PackedSeq::from_ascii(b"ACGTTGCATGGACCAGTTACGGATCAGG");
        for sk in scanner.scan(&read) {
            w.write(&sk).unwrap();
        }
        // Before finish: only obviously-uncommitted tmp files, no manifest.
        for i in 0..2 {
            let final_path = partition_path(&dir, i);
            assert!(!final_path.exists(), "final name must not exist pre-commit");
            assert!(pipeline::commit::tmp_path(&final_path).exists());
        }
        assert!(!dir.join("manifest.txt").exists());
        let manifest = w.finish().unwrap();
        // After finish: committed names only, no tmp leftovers.
        for i in 0..2 {
            assert!(manifest.partition_path(i).exists());
            assert!(!pipeline::commit::tmp_path(&manifest.partition_path(i)).exists());
        }
        assert!(dir.join("manifest.txt").exists());
        assert!(!dir.join("manifest.txt.tmp").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn duplicate_quarantine_lines_merge_on_load() {
        let dir = tmpdir("quarantine-dup");
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join("manifest.txt"),
            "parahash-msp-manifest v1\nk 5\np 3\npartitions 2\npart 0 0 0 0\npart 1 0 0 0\n\
             quarantined 1 first failure\nquarantined 1 second failure\nquarantined 0 other\n",
        )
        .unwrap();
        let loaded = PartitionManifest::load(&dir).unwrap();
        assert_eq!(loaded.quarantined().len(), 2, "{:?}", loaded.quarantined());
        assert_eq!(loaded.quarantined()[0].index, 1);
        assert_eq!(loaded.quarantined()[0].reason, "second failure");
        // Save rewrites exactly one line per quarantined partition.
        loaded.save().unwrap();
        let text = fs::read_to_string(dir.join("manifest.txt")).unwrap();
        assert_eq!(text.matches("quarantined 1 ").count(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    // NOTE: arming the real `msp.frame.append` site in a unit test would
    // race with sibling tests flushing frames on other threads (the
    // registry is process-global); real-site coverage lives in the
    // crash-recovery integration suite, which arms sites in forked child
    // processes via PARAHASH_FAILPOINTS.

    #[test]
    fn quarantine_line_with_bad_index_is_rejected() {
        let dir = tmpdir("quarantine-bad");
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join("manifest.txt"),
            "parahash-msp-manifest v1\nk 5\np 3\npartitions 1\npart 0 0 0 0\nquarantined 7 out of range\n",
        )
        .unwrap();
        let err = PartitionManifest::load(&dir).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_manifest_is_io_error() {
        let dir = tmpdir("missing");
        fs::create_dir_all(&dir).unwrap();
        assert!(matches!(PartitionManifest::load(&dir), Err(MspError::Io(_))));
        fs::remove_dir_all(&dir).unwrap();
    }
}
