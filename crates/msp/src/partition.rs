use dna::{Kmer, PackedSeq};

use crate::{MspError, Result, Superkmer, SuperkmerScanner};

/// Routes superkmers to partitions by minimizer hash.
///
/// The superkmer ID (the paper's term) is
/// `hash64(minimizer) mod num_partitions`; every duplicate of a vertex
/// shares its minimizer and therefore its partition.
///
/// # Examples
///
/// ```
/// use msp::PartitionRouter;
///
/// # fn main() -> msp::Result<()> {
/// let router = PartitionRouter::new(32)?;
/// let m: dna::Kmer = "ACGTT".parse().unwrap();
/// assert!(router.route_minimizer(&m) < 32);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionRouter {
    num_partitions: usize,
}

impl PartitionRouter {
    /// Creates a router over `num_partitions` partitions.
    ///
    /// # Errors
    ///
    /// Returns [`MspError::NoPartitions`] if `num_partitions == 0`.
    pub fn new(num_partitions: usize) -> Result<PartitionRouter> {
        if num_partitions == 0 {
            return Err(MspError::NoPartitions);
        }
        Ok(PartitionRouter { num_partitions })
    }

    /// The number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.num_partitions
    }

    /// Partition index for a minimizer.
    #[inline]
    pub fn route_minimizer(&self, minimizer: &Kmer) -> usize {
        (minimizer.hash64() % self.num_partitions as u64) as usize
    }

    /// Partition index for a superkmer (routes by its minimizer).
    #[inline]
    pub fn route(&self, sk: &Superkmer) -> usize {
        self.route_minimizer(sk.minimizer())
    }
}

/// Convenience for tests and baselines: scans every read and groups the
/// superkmers into in-memory partitions (what Step 1 does, minus the disk
/// files and the pipeline).
///
/// # Errors
///
/// Returns [`MspError::InvalidParams`] / [`MspError::NoPartitions`] for bad
/// parameters.
///
/// # Examples
///
/// ```
/// use dna::PackedSeq;
///
/// # fn main() -> msp::Result<()> {
/// let reads = vec![PackedSeq::from_ascii(b"TGATGGATGAACCAGT")];
/// let parts = msp::partition_in_memory(&reads, 5, 3, 8)?;
/// assert_eq!(parts.len(), 8);
/// let total: usize = parts.iter().flatten().map(|s| s.kmer_count()).sum();
/// assert_eq!(total, 16 - 5 + 1);
/// # Ok(())
/// # }
/// ```
pub fn partition_in_memory(
    reads: &[PackedSeq],
    k: usize,
    p: usize,
    num_partitions: usize,
) -> Result<Vec<Vec<Superkmer>>> {
    let scanner = SuperkmerScanner::new(k, p)?;
    let router = PartitionRouter::new(num_partitions)?;
    let mut parts = vec![Vec::new(); num_partitions];
    for read in reads {
        for sk in scanner.scan(read) {
            let idx = router.route(&sk);
            parts[idx].push(sk);
        }
    }
    Ok(parts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_partitions_rejected() {
        assert!(matches!(PartitionRouter::new(0), Err(MspError::NoPartitions)));
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        let router = PartitionRouter::new(7).unwrap();
        let m: Kmer = "GATTA".parse().unwrap();
        let first = router.route_minimizer(&m);
        assert!(first < 7);
        for _ in 0..10 {
            assert_eq!(router.route_minimizer(&m), first);
        }
    }

    #[test]
    fn one_partition_takes_everything() {
        let router = PartitionRouter::new(1).unwrap();
        for s in ["A", "ACGTT", "TTTTT"] {
            assert_eq!(router.route_minimizer(&s.parse().unwrap()), 0);
        }
    }

    #[test]
    fn duplicate_vertices_land_in_same_partition() {
        // A kmer seen forward in one read and reverse-complemented in
        // another must route identically (canonical minimizers).
        let fwd = PackedSeq::from_ascii(b"TGATGGATGA");
        let rev = fwd.revcomp();
        let k = 5;
        let p = 3;
        let n = 16;
        let parts_f = partition_in_memory(std::slice::from_ref(&fwd), k, p, n).unwrap();
        let parts_r = partition_in_memory(&[rev], k, p, n).unwrap();
        let locate = |parts: &Vec<Vec<Superkmer>>, canon: &Kmer| -> Vec<usize> {
            let mut found = Vec::new();
            for (i, part) in parts.iter().enumerate() {
                for sk in part {
                    for km in sk.kmers() {
                        if &km.canonical().0 == canon {
                            found.push(i);
                        }
                    }
                }
            }
            found
        };
        for km in fwd.kmers(k) {
            let canon = km.canonical().0;
            let in_f = locate(&parts_f, &canon);
            let in_r = locate(&parts_r, &canon);
            assert!(!in_f.is_empty() && !in_r.is_empty());
            let all: std::collections::HashSet<usize> =
                in_f.into_iter().chain(in_r).collect();
            assert_eq!(all.len(), 1, "vertex {canon} split across partitions {all:?}");
        }
    }

    #[test]
    fn partition_in_memory_covers_all_kmers() {
        let reads: Vec<PackedSeq> = ["ACGTTGCATGGACCAGTT", "GGCATTAGCCAGTACGGA"]
            .iter()
            .map(|s| PackedSeq::from_ascii(s.as_bytes()))
            .collect();
        let parts = partition_in_memory(&reads, 7, 4, 5).unwrap();
        let total: usize = parts.iter().flatten().map(Superkmer::kmer_count).sum();
        let expected: usize = reads.iter().map(|r| r.len() - 7 + 1).sum();
        assert_eq!(total, expected);
    }

    #[test]
    fn hash_spreads_minimizers() {
        // With enough distinct minimizers, more than one partition is hit.
        let reads = vec![PackedSeq::from_ascii(
            b"ACGTTGCATGGACCAGTTACGGATCAGGCATTAGCCAGTACGGATCACCGTATGCAATGCCGGA",
        )];
        let parts = partition_in_memory(&reads, 9, 3, 8).unwrap();
        let nonempty = parts.iter().filter(|p| !p.is_empty()).count();
        assert!(nonempty > 1, "expected spread, got {nonempty} non-empty partitions");
    }
}
