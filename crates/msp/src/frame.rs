//! CRC32-checksummed framing for partition files.
//!
//! The raw partition format (a bare concatenation of 2-bit superkmer
//! records) can only detect *truncation*: a record header that runs off
//! the end of the file. A flipped byte in the middle of a record decodes
//! to a different — perfectly plausible — DNA payload and is silently
//! absorbed into the graph. Since Step 2's correctness depends on
//! replaying exactly the bytes Step 1 wrote, partition files are wrapped
//! in checksummed frames:
//!
//! ```text
//! frame := u32 payload_len (LE) | u32 crc32(payload) (LE) | payload
//! file  := frame*
//! ```
//!
//! Frames are cut at superkmer-record boundaries (the writer flushes a
//! pending buffer of whole records), so every record is contiguous inside
//! one frame and the zero-copy view replay
//! ([`PartitionSlices::index_framed`](crate::PartitionSlices::index_framed))
//! still borrows straight out of the loaded file buffer.
//!
//! The checksum is CRC-32/ISO-HDLC (the zlib/PNG polynomial), implemented
//! locally — the container has no crc crate and none is needed for ~20
//! lines of table-driven code.

use crate::{MspError, Result};

/// Bytes of framing overhead per frame (length + checksum words).
pub const FRAME_HEADER_LEN: usize = 8;

/// Default flush threshold for the writer's pending record buffer: big
/// enough that framing overhead is ~0.01%, small enough that a corrupt
/// frame localises the damage.
pub const DEFAULT_FRAME_TARGET: usize = 64 << 10;

const CRC_TABLE: [u32; 256] = make_crc_table();

const fn make_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32/ISO-HDLC of `bytes` (polynomial `0xEDB88320`, init/final
/// complement) — the same variant zlib and PNG use.
///
/// # Examples
///
/// ```
/// assert_eq!(msp::crc32(b""), 0);
/// assert_eq!(msp::crc32(b"123456789"), 0xCBF4_3926); // the standard check value
/// ```
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Appends one frame (header + payload) to `out`. Empty payloads are
/// skipped — a zero-length frame carries no information.
pub fn append_frame(out: &mut Vec<u8>, payload: &[u8]) {
    if payload.is_empty() {
        return;
    }
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// How a framed buffer failed verification — recovery treats the two
/// classes very differently (see `docs/RECOVERY.md`): a **truncated
/// tail** is the expected signature of a crash mid-append (the valid
/// prefix is still trustworthy), while **interior corruption** means
/// the medium itself lied and the whole artifact is suspect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameFault {
    /// The buffer ends mid-header or mid-payload: every earlier frame
    /// verified, only the final (partial) frame is damaged.
    TruncatedTail,
    /// A checksum mismatch inside the buffer: bytes after this frame may
    /// also be garbage.
    InteriorCorruption,
}

impl std::fmt::Display for FrameFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameFault::TruncatedTail => write!(f, "truncated tail"),
            FrameFault::InteriorCorruption => write!(f, "interior corruption"),
        }
    }
}

fn frame_error(
    partition: Option<usize>,
    frame: usize,
    pos: usize,
    fault: FrameFault,
    detail: String,
) -> MspError {
    let ctx = match partition {
        Some(p) => format!("partition {p}, "),
        None => String::new(),
    };
    MspError::CorruptRecord {
        offset: pos as u64,
        reason: format!("{ctx}frame {frame} at byte {pos}: {fault} — {detail}"),
    }
}

/// Splits a framed buffer into its verified payload slices.
///
/// # Errors
///
/// Returns [`MspError::CorruptRecord`] (with the absolute byte offset of
/// the offending frame) when a header is truncated, a payload runs past
/// the buffer, or a checksum does not match.
pub fn frame_payloads(bytes: &[u8]) -> Result<Vec<&[u8]>> {
    frame_payloads_in(bytes, None)
}

/// [`frame_payloads`] with a partition id baked into error payloads, so
/// recovery logs name the damaged artifact. Errors state the partition
/// id (when given), the zero-based frame index, the absolute byte
/// offset, and whether the damage is a [`FrameFault::TruncatedTail`]
/// (crash signature — valid prefix intact) or
/// [`FrameFault::InteriorCorruption`] (checksum mismatch).
///
/// # Errors
///
/// Same classes as [`frame_payloads`].
pub fn frame_payloads_in(bytes: &[u8], partition: Option<usize>) -> Result<Vec<&[u8]>> {
    let mut payloads = Vec::new();
    let mut pos = 0usize;
    let mut frame = 0usize;
    while pos < bytes.len() {
        if bytes.len() - pos < FRAME_HEADER_LEN {
            return Err(frame_error(
                partition,
                frame,
                pos,
                FrameFault::TruncatedTail,
                format!(
                    "frame header truncated: {} bytes left, need {FRAME_HEADER_LEN}",
                    bytes.len() - pos
                ),
            ));
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let want = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        let start = pos + FRAME_HEADER_LEN;
        let end = match start.checked_add(len) {
            Some(end) if end <= bytes.len() => end,
            _ => {
                return Err(frame_error(
                    partition,
                    frame,
                    pos,
                    FrameFault::TruncatedTail,
                    format!(
                        "frame payload of {len} bytes truncated to {}",
                        bytes.len().saturating_sub(start)
                    ),
                ));
            }
        };
        let payload = &bytes[start..end];
        let got = crc32(payload);
        if got != want {
            return Err(frame_error(
                partition,
                frame,
                pos,
                FrameFault::InteriorCorruption,
                format!("frame checksum mismatch: stored {want:#010x}, computed {got:#010x}"),
            ));
        }
        payloads.push(payload);
        pos = end;
        frame += 1;
    }
    Ok(payloads)
}

/// Verifies every frame and concatenates the payloads into one owned
/// buffer of raw records — the bridge from framed files back to the
/// unframed in-memory record stream the owned decoder consumes.
///
/// # Errors
///
/// Same as [`frame_payloads`].
pub fn deframe(bytes: &[u8]) -> Result<Vec<u8>> {
    deframe_in(bytes, None)
}

/// [`deframe`] with a partition id baked into error payloads (see
/// [`frame_payloads_in`]).
///
/// # Errors
///
/// Same as [`frame_payloads`].
pub fn deframe_in(bytes: &[u8], partition: Option<usize>) -> Result<Vec<u8>> {
    let payloads = frame_payloads_in(bytes, partition)?;
    let total: usize = payloads.iter().map(|p| p.len()).sum();
    let mut out = Vec::with_capacity(total);
    for p in payloads {
        out.extend_from_slice(p);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn roundtrip_multiple_frames() {
        let mut buf = Vec::new();
        append_frame(&mut buf, b"first payload");
        append_frame(&mut buf, b"");
        append_frame(&mut buf, b"second");
        let payloads = frame_payloads(&buf).unwrap();
        assert_eq!(payloads, vec![b"first payload".as_slice(), b"second".as_slice()]);
        assert_eq!(deframe(&buf).unwrap(), b"first payloadsecond");
    }

    #[test]
    fn empty_buffer_has_no_frames() {
        assert!(frame_payloads(&[]).unwrap().is_empty());
        assert_eq!(deframe(&[]).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn interior_bit_flip_is_detected() {
        let mut buf = Vec::new();
        append_frame(&mut buf, &[7u8; 100]);
        for victim in [FRAME_HEADER_LEN, FRAME_HEADER_LEN + 50, buf.len() - 1] {
            let mut bad = buf.clone();
            bad[victim] ^= 0x20;
            let err = deframe(&bad).unwrap_err();
            assert!(err.to_string().contains("checksum mismatch"), "byte {victim}: {err}");
        }
    }

    #[test]
    fn truncation_is_detected_at_any_cut() {
        let mut buf = Vec::new();
        append_frame(&mut buf, b"some record bytes");
        for cut in 1..buf.len() {
            let err = deframe(&buf[..cut]).unwrap_err();
            assert!(matches!(err, MspError::CorruptRecord { .. }), "cut {cut}");
        }
    }

    #[test]
    fn second_frame_error_reports_absolute_offset() {
        let mut buf = Vec::new();
        append_frame(&mut buf, b"good frame");
        let second_start = buf.len();
        append_frame(&mut buf, b"bad frame");
        buf[second_start + FRAME_HEADER_LEN] ^= 0xFF;
        match deframe(&buf).unwrap_err() {
            MspError::CorruptRecord { offset, .. } => {
                assert_eq!(offset, second_start as u64);
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn error_payload_names_partition_frame_offset_and_class() {
        let mut buf = Vec::new();
        append_frame(&mut buf, b"frame zero");
        let second_start = buf.len();
        append_frame(&mut buf, b"frame one");

        // Interior corruption in frame 1.
        let mut bad = buf.clone();
        bad[second_start + FRAME_HEADER_LEN] ^= 0xFF;
        let err = deframe_in(&bad, Some(42)).unwrap_err().to_string();
        assert!(err.contains("partition 42"), "{err}");
        assert!(err.contains("frame 1"), "{err}");
        assert!(err.contains(&format!("byte {second_start}")), "{err}");
        assert!(err.contains("interior corruption"), "{err}");

        // Torn tail: cut mid-way through frame 1's payload.
        let cut = &buf[..buf.len() - 3];
        let err = frame_payloads_in(cut, Some(7)).unwrap_err().to_string();
        assert!(err.contains("partition 7"), "{err}");
        assert!(err.contains("frame 1"), "{err}");
        assert!(err.contains("truncated tail"), "{err}");

        // Cut mid-header of frame 1 is also a torn tail.
        let cut = &buf[..second_start + 3];
        let err = frame_payloads_in(cut, None).unwrap_err().to_string();
        assert!(err.contains("truncated tail"), "{err}");
        assert!(!err.contains("partition"), "{err}");
    }

    #[test]
    fn oversized_declared_length_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(b"tiny");
        let err = frame_payloads(&buf).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
    }
}
