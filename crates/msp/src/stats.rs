/// Per-partition accounting collected while writing superkmer partitions.
///
/// The kmer count per partition (`N_kmer^i` in the paper's §IV-A) is what
/// sizes the Step-2 hash table for that partition, and the distribution of
/// these counts across partitions is Fig 6 / Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PartitionStats {
    /// Superkmers written to this partition.
    pub superkmers: u64,
    /// K-mers contained in those superkmers (Σ core_len − K + 1).
    pub kmers: u64,
    /// Encoded bytes written.
    pub bytes: u64,
}

impl PartitionStats {
    /// Accumulates another stats record into this one.
    pub fn merge(&mut self, other: &PartitionStats) {
        self.superkmers += other.superkmers;
        self.kmers += other.kmers;
        self.bytes += other.bytes;
    }
}

/// Five-number-ish summary of a per-partition count distribution, used to
/// reproduce Fig 6 (partition size variance vs. minimizer length `P`) and
/// Table II (max hash table size vs. number of partitions).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistributionSummary {
    /// Number of partitions summarised.
    pub count: usize,
    /// Sum over all partitions.
    pub total: u64,
    /// Smallest partition.
    pub min: u64,
    /// Largest partition.
    pub max: u64,
    /// Mean partition size.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
}

impl DistributionSummary {
    /// Summarises a slice of per-partition counts.
    ///
    /// # Panics
    ///
    /// Panics if `counts` is empty.
    pub fn from_counts(counts: &[u64]) -> DistributionSummary {
        assert!(!counts.is_empty(), "cannot summarise zero partitions");
        let total: u64 = counts.iter().sum();
        let mean = total as f64 / counts.len() as f64;
        let var = counts.iter().map(|&c| (c as f64 - mean).powi(2)).sum::<f64>()
            / counts.len() as f64;
        DistributionSummary {
            count: counts.len(),
            total,
            min: *counts.iter().min().expect("non-empty"),
            max: *counts.iter().max().expect("non-empty"),
            mean,
            std_dev: var.sqrt(),
        }
    }

    /// Coefficient of variation (σ/μ); the balance metric Fig 6 tracks as
    /// `P` grows. Zero for perfectly balanced partitions; 0 when the mean
    /// is 0.
    pub fn coefficient_of_variation(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = PartitionStats { superkmers: 1, kmers: 10, bytes: 100 };
        a.merge(&PartitionStats { superkmers: 2, kmers: 20, bytes: 200 });
        assert_eq!(a, PartitionStats { superkmers: 3, kmers: 30, bytes: 300 });
    }

    #[test]
    fn summary_of_uniform_counts() {
        let s = DistributionSummary::from_counts(&[5, 5, 5, 5]);
        assert_eq!(s.total, 20);
        assert_eq!(s.min, 5);
        assert_eq!(s.max, 5);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.coefficient_of_variation(), 0.0);
    }

    #[test]
    fn summary_of_skewed_counts() {
        let s = DistributionSummary::from_counts(&[0, 10]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std_dev, 5.0);
        assert_eq!(s.coefficient_of_variation(), 1.0);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 10);
    }

    #[test]
    fn zero_mean_cv_is_zero() {
        let s = DistributionSummary::from_counts(&[0, 0, 0]);
        assert_eq!(s.coefficient_of_variation(), 0.0);
    }

    #[test]
    #[should_panic(expected = "zero partitions")]
    fn empty_counts_panic() {
        DistributionSummary::from_counts(&[]);
    }
}
