//! Budget-governed partition staging for the fused Step-1→Step-2 pipeline.
//!
//! [`PartitionStore`] is the in-memory sibling of
//! [`PartitionWriter`](crate::PartitionWriter): it accepts the same
//! encoded superkmer records, cuts the same CRC32-checksummed frames, and
//! produces the same manifest — but partitions stay **resident** (framed
//! byte buffers) until a configurable byte budget is exceeded, at which
//! point the largest resident partitions are **spilled** to the usual
//! `part-NNNNN.skm` files. Because spilled bytes keep the exact on-disk
//! frame format, [`PartitionSlices::index_framed`](crate::PartitionSlices)
//! consumes both backends unchanged.
//!
//! The budget invariant — *resident payload bytes (including the frame
//! header reserved for each partition's pending buffer) never exceed the
//! budget* — holds after **every** append, not just at flush points:
//! frame headers are accounted the moment a pending buffer becomes
//! non-empty, so flushing pending records into the resident backing is
//! cost-neutral. A budget of `0` therefore degenerates to the classic
//! all-on-disk behaviour (every partition spills on first touch), and a
//! huge budget keeps Step 2 entirely off the disk.
//!
//! Spilled partitions retain only a bounded pending buffer (at most the
//! frame target, same as `PartitionWriter`); that working memory is not
//! counted against the budget, which governs resident partition
//! *payloads*.

use std::fs::{self, File};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use pipeline::{commit, failpoint};

use crate::frame::{append_frame, crc32, DEFAULT_FRAME_TARGET, FRAME_HEADER_LEN};
use crate::writer::partition_path;
use crate::{MspError, PartitionManifest, PartitionRouter, PartitionStats, Result};

/// Destination-agnostic Step-1 output: both the all-disk
/// [`PartitionWriter`](crate::PartitionWriter) and the budget-governed
/// [`PartitionStore`] accept encoded superkmer records through this
/// trait, so the Step-1 pipeline is written once against the sink.
pub trait PartitionSink {
    /// Appends already-encoded superkmer records to a partition.
    /// `superkmers` and `kmers` are the record counts the caller tallied
    /// while encoding.
    ///
    /// # Errors
    ///
    /// Propagates write failures (spill I/O for stores, file I/O for
    /// writers).
    fn append_encoded(
        &mut self,
        partition: usize,
        bytes: &[u8],
        superkmers: u64,
        kmers: u64,
    ) -> Result<()>;
}

/// Where a sealed partition's framed bytes live.
#[derive(Debug)]
pub enum SealedPayload {
    /// The partition stayed within the budget: its framed bytes are handed
    /// over directly, no disk round-trip.
    Resident(Vec<u8>),
    /// The partition was spilled: read the framed bytes back from this
    /// file (identical format to `PartitionWriter` output).
    Spilled(PathBuf),
}

/// One partition sealed by [`PartitionStore::seal`], ready for Step 2.
#[derive(Debug)]
pub struct SealedPartition {
    /// Partition index.
    pub index: usize,
    /// Superkmer records in the partition.
    pub superkmers: u64,
    /// Total k-mers across those records.
    pub kmers: u64,
    /// Payload bytes (excluding frame headers), as in the manifest.
    pub bytes: u64,
    /// The framed bytes, resident or on disk.
    pub payload: SealedPayload,
}

#[derive(Debug)]
enum Backing {
    /// Framed bytes accumulating in memory.
    Resident(Vec<u8>),
    /// Framed bytes streaming to the partition file.
    Spilled(BufWriter<File>),
    /// Handed off via [`PartitionStore::seal`].
    Sealed,
}

#[derive(Debug)]
struct Slot {
    backing: Backing,
    /// Whole records awaiting their next checksummed frame.
    pending: Vec<u8>,
}

impl Slot {
    /// Budget cost of a resident slot: backing + pending + the frame
    /// header already reserved for the pending records (so flushing
    /// pending into backing never changes the cost).
    fn resident_cost(&self) -> u64 {
        let backing = match &self.backing {
            Backing::Resident(v) => v.len(),
            _ => return 0,
        };
        let pend = self.pending.len();
        let header = if pend == 0 { 0 } else { FRAME_HEADER_LEN };
        (backing + pend + header) as u64
    }
}

/// Budget-governed partition staging: resident framed buffers with
/// spill-to-disk overflow. See the [module docs](self) for the policy.
///
/// # Examples
///
/// ```no_run
/// use msp::{PartitionSink, PartitionStore, SealedPayload};
///
/// # fn main() -> msp::Result<()> {
/// let mut store = PartitionStore::create("/tmp/parts", 4, 27, 11, 1 << 20)?;
/// store.append_encoded(0, &[0u8; 16], 1, 3)?;
/// let manifest = store.finish_manifest()?;
/// let sealed = store.seal(0)?;
/// assert!(matches!(sealed.payload, SealedPayload::Resident(_)));
/// # let _ = manifest;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct PartitionStore {
    dir: PathBuf,
    k: usize,
    p: usize,
    /// Resident payload budget in bytes. `0` = spill everything.
    budget: u64,
    frame_target: usize,
    stats: Vec<PartitionStats>,
    slots: Vec<Slot>,
    /// `residency[i]` is false once partition `i` has spilled.
    residency: Vec<bool>,
    resident_bytes: u64,
    peak_resident_bytes: u64,
    spills: u64,
    /// Run-scope token carried by the staged spill `*.tmp` names (empty
    /// = unscoped). See [`pipeline::commit::tmp_path_scoped`].
    run_token: String,
}

impl PartitionStore {
    /// Creates the directory (spill files are created lazily, only when a
    /// partition actually exceeds the budget).
    ///
    /// # Errors
    ///
    /// Returns [`MspError::NoPartitions`] for `num_partitions == 0`,
    /// [`MspError::InvalidParams`] for bad `k`/`p`, or an I/O error if the
    /// directory cannot be created.
    pub fn create(
        dir: impl AsRef<Path>,
        num_partitions: usize,
        k: usize,
        p: usize,
        budget_bytes: u64,
    ) -> Result<PartitionStore> {
        PartitionStore::create_scoped(dir, num_partitions, k, p, budget_bytes, "")
    }

    /// [`create`](Self::create) with a run-scope token: spill files are
    /// staged as `part-NNNNN.skm.{token}.tmp`, so sweeps scoped to other
    /// runs sharing the directory cannot delete this run's live staging
    /// ([`pipeline::commit::sweep_tmp_scoped`]). An empty token keeps
    /// the plain `.tmp` names.
    ///
    /// # Errors
    ///
    /// Same as [`create`](Self::create).
    pub fn create_scoped(
        dir: impl AsRef<Path>,
        num_partitions: usize,
        k: usize,
        p: usize,
        budget_bytes: u64,
        run_token: &str,
    ) -> Result<PartitionStore> {
        if p < 1 || p > k || k > dna::MAX_K {
            return Err(MspError::InvalidParams { k, p });
        }
        // Validates num_partitions > 0 exactly like the writer.
        let _ = PartitionRouter::new(num_partitions)?;
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let slots = (0..num_partitions)
            .map(|_| Slot { backing: Backing::Resident(Vec::new()), pending: Vec::new() })
            .collect();
        Ok(PartitionStore {
            dir,
            k,
            p,
            budget: budget_bytes,
            frame_target: DEFAULT_FRAME_TARGET,
            stats: vec![PartitionStats::default(); num_partitions],
            slots,
            residency: vec![true; num_partitions],
            resident_bytes: 0,
            peak_resident_bytes: 0,
            spills: 0,
            run_token: run_token.to_owned(),
        })
    }

    /// The partition directory (holds spill files and the manifest).
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.slots.len()
    }

    /// Overrides the frame flush threshold (default
    /// [`DEFAULT_FRAME_TARGET`](crate::DEFAULT_FRAME_TARGET)).
    pub fn set_frame_target(&mut self, bytes: usize) {
        self.frame_target = bytes.max(1);
    }

    /// Current resident payload bytes (always `<=` the budget).
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }

    /// High-water mark of [`resident_bytes`](Self::resident_bytes).
    pub fn peak_resident_bytes(&self) -> u64 {
        self.peak_resident_bytes
    }

    /// How many partitions have been spilled to disk.
    pub fn spill_count(&self) -> u64 {
        self.spills
    }

    /// Whether partition `index` is still resident (never spilled).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn is_resident(&self, index: usize) -> bool {
        self.residency[index]
    }

    /// Per-partition statistics accumulated so far.
    pub fn stats(&self) -> &[PartitionStats] {
        &self.stats
    }

    /// Appends records to partition `partition`, spilling as needed to
    /// keep resident bytes within the budget.
    fn push_bytes(
        &mut self,
        partition: usize,
        bytes: &[u8],
        superkmers: u64,
        kmers: u64,
    ) -> Result<()> {
        if !bytes.is_empty() {
            if matches!(self.slots[partition].backing, Backing::Resident(_)) {
                // Cost delta of appending `bytes` to this slot's pending
                // buffer: the payload plus the frame header reserved when
                // the buffer first becomes non-empty.
                let header = if self.slots[partition].pending.is_empty() {
                    FRAME_HEADER_LEN as u64
                } else {
                    0
                };
                let delta = bytes.len() as u64 + header;
                if self.slots[partition].resident_cost() + delta > self.budget {
                    // This partition alone can no longer fit: spill it
                    // directly rather than evicting everyone else first.
                    self.spill(partition)?;
                } else {
                    while self.resident_bytes + delta > self.budget {
                        let victim = self.largest_resident().expect(
                            "resident_bytes > 0 implies a resident slot exists",
                        );
                        self.spill(victim)?;
                        if victim == partition {
                            break;
                        }
                    }
                }
            }
            let slot = &mut self.slots[partition];
            if matches!(slot.backing, Backing::Resident(_)) && slot.pending.is_empty() {
                self.resident_bytes += FRAME_HEADER_LEN as u64;
            }
            if matches!(slot.backing, Backing::Resident(_)) {
                self.resident_bytes += bytes.len() as u64;
            }
            slot.pending.extend_from_slice(bytes);
            self.peak_resident_bytes = self.peak_resident_bytes.max(self.resident_bytes);
            debug_assert!(
                self.resident_bytes <= self.budget,
                "budget invariant violated: {} > {}",
                self.resident_bytes,
                self.budget
            );
        }
        let s = &mut self.stats[partition];
        s.superkmers += superkmers;
        s.kmers += kmers;
        s.bytes += bytes.len() as u64;
        if self.slots[partition].pending.len() >= self.frame_target {
            self.flush_frame(partition)?;
        }
        Ok(())
    }

    /// Largest resident slot by cost; ties broken towards the lowest
    /// index so spill order is deterministic.
    fn largest_resident(&self) -> Option<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s.backing, Backing::Resident(_)))
            .max_by(|(ia, a), (ib, b)| {
                a.resident_cost().cmp(&b.resident_cost()).then(ib.cmp(ia))
            })
            .map(|(i, _)| i)
    }

    /// Converts a resident slot to a spill file: the already-framed
    /// backing bytes stream straight out; pending records stay buffered
    /// (they keep framing as usual, just to disk now).
    ///
    /// The spill file is staged as `part-NNNNN.skm.tmp` and only renamed
    /// to its final name (fsync, rename, dir fsync) when the partition is
    /// [sealed](Self::seal) — a crash mid-spill leaves an obviously
    /// uncommitted `*.tmp`, never a plausible-looking partial partition.
    fn spill(&mut self, partition: usize) -> Result<()> {
        failpoint::hit("msp.store.spill")?;
        let cost = self.slots[partition].resident_cost();
        let slot = &mut self.slots[partition];
        let backing = match std::mem::replace(&mut slot.backing, Backing::Sealed) {
            Backing::Resident(v) => v,
            other => {
                slot.backing = other;
                panic!("spill of non-resident partition {partition}");
            }
        };
        let staged = commit::tmp_path_scoped(&partition_path(&self.dir, partition), &self.run_token);
        let mut file = BufWriter::new(File::create(staged)?);
        file.write_all(&backing)?;
        slot.backing = Backing::Spilled(file);
        self.residency[partition] = false;
        self.resident_bytes -= cost;
        self.spills += 1;
        Ok(())
    }

    /// Writes the partition's pending records as one checksummed frame —
    /// into the resident backing or the spill file. Cost-neutral for
    /// resident slots (the header was reserved at append time).
    fn flush_frame(&mut self, partition: usize) -> Result<()> {
        let slot = &mut self.slots[partition];
        if slot.pending.is_empty() {
            return Ok(());
        }
        match &mut slot.backing {
            Backing::Resident(backing) => {
                append_frame(backing, &slot.pending);
            }
            Backing::Spilled(file) => {
                file.write_all(&(slot.pending.len() as u32).to_le_bytes())?;
                file.write_all(&crc32(&slot.pending).to_le_bytes())?;
                file.write_all(&slot.pending)?;
            }
            Backing::Sealed => panic!("write to sealed partition {partition}"),
        }
        slot.pending.clear();
        Ok(())
    }

    /// Builds and saves the manifest (with `resident`/`spilled` lines)
    /// from the stats accumulated so far. Call once appends are complete;
    /// sealing does not change the recorded residency.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from writing `manifest.txt`.
    pub fn finish_manifest(&self) -> Result<PartitionManifest> {
        let manifest = PartitionManifest::from_parts(
            self.dir.clone(),
            self.k,
            self.p,
            self.stats.clone(),
            Vec::new(),
            Some(self.residency.clone()),
        );
        manifest.save()?;
        Ok(manifest)
    }

    /// Flushes and hands off one partition for Step 2: resident bytes
    /// move out by value (no disk round-trip), spilled partitions flush
    /// their file and return its path.
    ///
    /// # Errors
    ///
    /// Propagates flush failures.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or already sealed.
    pub fn seal(&mut self, index: usize) -> Result<SealedPartition> {
        self.flush_frame(index)?;
        let cost = self.slots[index].resident_cost();
        let slot = &mut self.slots[index];
        let payload = match std::mem::replace(&mut slot.backing, Backing::Sealed) {
            Backing::Resident(v) => {
                self.resident_bytes -= cost;
                SealedPayload::Resident(v)
            }
            Backing::Spilled(file) => {
                // Commit the staged spill: flush buffers, fsync the data,
                // rename `*.skm.tmp` → `*.skm`, fsync the directory. Only
                // now does the final name exist.
                let file = file.into_inner().map_err(|e| MspError::Io(e.into()))?;
                file.sync_all()?;
                drop(file);
                let path = partition_path(&self.dir, index);
                fs::rename(commit::tmp_path_scoped(&path, &self.run_token), &path)?;
                commit::sync_dir(&self.dir);
                SealedPayload::Spilled(path)
            }
            Backing::Sealed => panic!("partition {index} sealed twice"),
        };
        let s = &self.stats[index];
        Ok(SealedPartition {
            index,
            superkmers: s.superkmers,
            kmers: s.kmers,
            bytes: s.bytes,
            payload,
        })
    }
}

impl PartitionSink for PartitionStore {
    fn append_encoded(
        &mut self,
        partition: usize,
        bytes: &[u8],
        superkmers: u64,
        kmers: u64,
    ) -> Result<()> {
        self.push_bytes(partition, bytes, superkmers, kmers)
    }
}

impl PartitionSink for crate::PartitionWriter {
    fn append_encoded(
        &mut self,
        partition: usize,
        bytes: &[u8],
        superkmers: u64,
        kmers: u64,
    ) -> Result<()> {
        crate::PartitionWriter::append_encoded(self, partition, bytes, superkmers, kmers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{encode_superkmer, PartitionSlices, SuperkmerScanner};
    use dna::PackedSeq;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("msp-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn encoded_corpus(k: usize, p: usize, parts: usize) -> Vec<(usize, Vec<u8>, u64)> {
        let scanner = SuperkmerScanner::new(k, p).unwrap();
        let router = PartitionRouter::new(parts).unwrap();
        let read = PackedSeq::from_ascii(
            b"ACGTTGCATGGACCAGTTACGGATCAGGCATTAGCCAGTTGCATGGAACGTAGCATCAGGATCCA",
        );
        scanner
            .scan(&read)
            .iter()
            .map(|sk| {
                let mut buf = Vec::new();
                encode_superkmer(sk, &mut buf);
                (router.route(sk), buf, sk.kmer_count() as u64)
            })
            .collect()
    }

    #[test]
    fn huge_budget_keeps_everything_resident() {
        let dir = tmpdir("resident");
        let mut store = PartitionStore::create(&dir, 4, 7, 4, u64::MAX).unwrap();
        for (part, bytes, kmers) in encoded_corpus(7, 4, 4) {
            store.append_encoded(part, &bytes, 1, kmers).unwrap();
        }
        assert_eq!(store.spill_count(), 0);
        for i in 0..4 {
            assert!(store.is_resident(i));
            assert!(!partition_path(&dir, i).exists(), "no spill file for {i}");
        }
        let manifest = store.finish_manifest().unwrap();
        assert!(manifest.total_kmers() > 0);
        // Sealed resident payloads index exactly like writer output.
        for i in 0..4 {
            let sealed = store.seal(i).unwrap();
            let SealedPayload::Resident(bytes) = sealed.payload else {
                panic!("expected resident payload");
            };
            let slices = PartitionSlices::index_framed(&bytes, 7, 4).unwrap();
            assert_eq!(slices.len() as u64, sealed.superkmers);
        }
        assert_eq!(store.resident_bytes(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn equal_cost_spill_ties_break_by_partition_id() {
        // Spill-largest must be a total order: when two resident slots
        // cost exactly the same, the lower partition id is evicted, so
        // spill order — and with it the largest-first Step-2 dispatch
        // order derived from residency — is identical run to run.
        let dir = tmpdir("spilltie");
        let payload = vec![0u8; 100];
        let per_slot = payload.len() as u64 + FRAME_HEADER_LEN as u64;
        let mut store = PartitionStore::create(&dir, 4, 7, 4, 2 * per_slot + 1).unwrap();
        // Fill partitions 2 then 1 to identical cost (order deliberately
        // reversed from the tie-break order).
        store.append_encoded(2, &payload, 1, 1).unwrap();
        store.append_encoded(1, &payload, 1, 1).unwrap();
        assert!(store.is_resident(1) && store.is_resident(2));
        // One more byte of anything overflows the budget; of the tied
        // victims {1, 2}, partition 1 must be the one spilled.
        store.append_encoded(3, &payload, 1, 1).unwrap();
        assert!(!store.is_resident(1), "lowest-id tie loser must spill");
        assert!(store.is_resident(2), "higher-id tie peer must stay");
        assert!(store.is_resident(3));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn zero_budget_spills_everything() {
        let dir = tmpdir("allspill");
        let mut store = PartitionStore::create(&dir, 4, 7, 4, 0).unwrap();
        let corpus = encoded_corpus(7, 4, 4);
        let mut touched = [false; 4];
        for (part, bytes, kmers) in &corpus {
            store.append_encoded(*part, bytes, 1, *kmers).unwrap();
            touched[*part] = true;
            assert_eq!(store.resident_bytes(), 0, "zero budget must stay at zero");
        }
        assert_eq!(store.peak_resident_bytes(), 0);
        for (i, &hit) in touched.iter().enumerate() {
            if hit {
                assert!(!store.is_resident(i));
                // Spills stage to `*.tmp`; the final name appears at seal.
                let final_path = partition_path(&dir, i);
                assert!(commit::tmp_path(&final_path).exists());
                assert!(!final_path.exists(), "final name must wait for seal");
                let sealed = store.seal(i).unwrap();
                assert!(matches!(sealed.payload, SealedPayload::Spilled(_)));
                assert!(final_path.exists());
                assert!(!commit::tmp_path(&final_path).exists());
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn budget_invariant_holds_after_every_append() {
        for budget in [0u64, 16, 64, 200, 1 << 20] {
            let dir = tmpdir(&format!("budget-{budget}"));
            let mut store = PartitionStore::create(&dir, 4, 7, 4, budget).unwrap();
            for (part, bytes, kmers) in encoded_corpus(7, 4, 4) {
                store.append_encoded(part, &bytes, 1, kmers).unwrap();
                assert!(
                    store.resident_bytes() <= budget,
                    "resident {} exceeds budget {budget}",
                    store.resident_bytes()
                );
            }
            assert!(store.peak_resident_bytes() <= budget);
            fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn sealed_output_matches_partition_writer_counts() {
        // Whatever the budget, the total records visible through
        // index_framed must equal the writer's.
        let corpus = encoded_corpus(7, 4, 4);
        let dir_w = tmpdir("parity-writer");
        let mut writer = crate::PartitionWriter::create(&dir_w, 4, 7, 4).unwrap();
        for (part, bytes, kmers) in &corpus {
            crate::PartitionWriter::append_encoded(&mut writer, *part, bytes, 1, *kmers).unwrap();
        }
        let wm = writer.finish().unwrap();

        for budget in [0u64, 100, u64::MAX] {
            let dir_s = tmpdir(&format!("parity-{budget}"));
            let mut store = PartitionStore::create(&dir_s, 4, 7, 4, budget).unwrap();
            for (part, bytes, kmers) in &corpus {
                store.append_encoded(*part, bytes, 1, *kmers).unwrap();
            }
            let sm = store.finish_manifest().unwrap();
            assert_eq!(sm.stats(), wm.stats(), "budget {budget}");
            for i in 0..4 {
                let sealed = store.seal(i).unwrap();
                let bytes = match &sealed.payload {
                    SealedPayload::Resident(v) => v.clone(),
                    SealedPayload::Spilled(path) => fs::read(path).unwrap(),
                };
                let slices = PartitionSlices::index_framed(&bytes, 7, 4).unwrap();
                assert_eq!(slices.len() as u64, wm.stats()[i].superkmers, "budget {budget} part {i}");
            }
            fs::remove_dir_all(&dir_s).unwrap();
        }
        fs::remove_dir_all(&dir_w).unwrap();
    }

    #[test]
    fn spills_largest_partition_first() {
        let dir = tmpdir("largest");
        // Budget fits ~2 small appends; partition 0 gets a big record so
        // it must be the first victim when partition 1 needs room.
        let mut store = PartitionStore::create(&dir, 3, 7, 4, 128).unwrap();
        store.append_encoded(0, &[7u8; 80], 1, 1).unwrap();
        store.append_encoded(1, &[9u8; 24], 1, 1).unwrap();
        // 80+8 + 24+8 = 120 resident; appending 24 more to partition 2
        // (24+8=32) busts 128 → partition 0 (cost 88) spills.
        store.append_encoded(2, &[5u8; 24], 1, 1).unwrap();
        assert!(!store.is_resident(0), "largest partition spills first");
        assert!(store.is_resident(1));
        assert!(store.is_resident(2));
        assert_eq!(store.spill_count(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn oversized_record_spills_its_own_partition() {
        let dir = tmpdir("oversized");
        let mut store = PartitionStore::create(&dir, 2, 7, 4, 64).unwrap();
        store.append_encoded(0, &[1u8; 16], 1, 1).unwrap();
        // 200 bytes can never fit partition 1 in a 64-byte budget: spill
        // partition 1 directly, leave partition 0 resident.
        store.append_encoded(1, &[2u8; 200], 1, 1).unwrap();
        assert!(store.is_resident(0));
        assert!(!store.is_resident(1));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_residency_roundtrips() {
        let dir = tmpdir("residency");
        let mut store = PartitionStore::create(&dir, 3, 7, 4, 40).unwrap();
        store.append_encoded(0, &[1u8; 16], 1, 1).unwrap();
        store.append_encoded(1, &[2u8; 30], 1, 1).unwrap(); // spills someone
        let manifest = store.finish_manifest().unwrap();
        let loaded = PartitionManifest::load(&dir).unwrap();
        assert_eq!(loaded, manifest);
        assert_eq!(loaded.residency(), manifest.residency());
        assert!(loaded.residency().is_some());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn invalid_params_rejected() {
        let dir = tmpdir("invalid");
        assert!(matches!(
            PartitionStore::create(&dir, 0, 5, 3, 0),
            Err(MspError::NoPartitions)
        ));
        assert!(matches!(
            PartitionStore::create(&dir, 4, 3, 5, 0),
            Err(MspError::InvalidParams { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }
}
