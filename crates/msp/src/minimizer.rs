use std::collections::VecDeque;

use dna::{CanonicalKmerCursor, Kmer, PackedSeq};

use crate::{MspError, Result};

/// Computes the minimizer of a single k-mer: the lexicographically minimal
/// length-`p` substring over the k-mer **and its reverse complement** (the
/// canonical pair — see the crate docs for why both strands are needed).
///
/// This is the O(K·P) brute force the paper describes; the sliding-window
/// [`MinimizerScanner`] produces identical results in O(L) per read and is
/// what the system uses. Keep this around as the reference for tests and
/// the ablation bench.
///
/// # Examples
///
/// ```
/// use dna::Kmer;
/// use msp::minimizer_of_kmer;
///
/// # fn main() -> Result<(), dna::DnaError> {
/// let k: Kmer = "TGATG".parse()?;
/// // Substrings of TGATG: TGA, GAT, ATG; of CATCA: CAT, ATC, TCA.
/// assert_eq!(minimizer_of_kmer(&k, 3).to_string(), "ATC");
/// # Ok(())
/// # }
/// ```
///
/// # Panics
///
/// Panics if `p` is 0 or exceeds the k-mer length.
pub fn minimizer_of_kmer(kmer: &Kmer, p: usize) -> Kmer {
    assert!(p >= 1 && p <= kmer.k(), "invalid minimizer length {p} for k={}", kmer.k());
    let strand_min = |km: &Kmer| (0..=km.k() - p).map(|i| km.sub(i, p)).min().expect("k >= p");
    strand_min(kmer).min(strand_min(&kmer.revcomp()))
}

/// O(L) sliding-window minimizer scanner for whole reads.
///
/// For a read of length `L` it reports, for each of the `L−K+1` k-mer
/// positions, that k-mer's canonical minimizer. Internally it runs a
/// monotone-deque window minimum over the read's p-mers on both strands —
/// each p-mer enters and leaves the deque at most once, so the whole scan
/// is linear regardless of `K` or `P`.
///
/// # Examples
///
/// ```
/// use dna::PackedSeq;
/// use msp::{minimizer_of_kmer, MinimizerScanner};
///
/// # fn main() -> msp::Result<()> {
/// let read = PackedSeq::from_ascii(b"ACGTTGCATGGA");
/// let scanner = MinimizerScanner::new(5, 3)?;
/// let mins = scanner.scan(&read);
/// assert_eq!(mins.len(), read.len() - 5 + 1);
/// // Matches the brute force at every position:
/// for (i, m) in mins.iter().enumerate() {
///     let kmer = read.kmer_at(i, 5).unwrap();
///     assert_eq!(*m, minimizer_of_kmer(&kmer, 3));
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MinimizerScanner {
    k: usize,
    p: usize,
}

impl MinimizerScanner {
    /// Creates a scanner for k-mers of length `k` and minimizers of
    /// length `p`.
    ///
    /// # Errors
    ///
    /// Returns [`MspError::InvalidParams`] unless `1 ≤ p ≤ k ≤ MAX_K`.
    pub fn new(k: usize, p: usize) -> Result<MinimizerScanner> {
        if p < 1 || p > k || k > dna::MAX_K {
            return Err(MspError::InvalidParams { k, p });
        }
        Ok(MinimizerScanner { k, p })
    }

    /// The k-mer length.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The minimizer length.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Scans a read, returning one canonical minimizer per k-mer position
    /// (empty if the read is shorter than `k`).
    pub fn scan(&self, read: &PackedSeq) -> Vec<Kmer> {
        if read.len() < self.k {
            return Vec::new();
        }
        let window = self.k - self.p + 1;
        let fwd = window_minima(read, self.p, window);
        let rc = window_minima(&read.revcomp(), self.p, window);
        let n = read.len() - self.k + 1;
        debug_assert_eq!(fwd.len(), n);
        debug_assert_eq!(rc.len(), n);
        (0..n).map(|i| fwd[i].min(rc[n - 1 - i])).collect()
    }

    /// Brute-force scan: per-position [`minimizer_of_kmer`]. Identical
    /// output, O(L·K·P) cost; exists for testing and the ablation bench.
    pub fn scan_naive(&self, read: &PackedSeq) -> Vec<Kmer> {
        if read.len() < self.k {
            return Vec::new();
        }
        (0..=read.len() - self.k)
            .map(|i| minimizer_of_kmer(&read.kmer_at(i, self.k).expect("in range"), self.p))
            .collect()
    }

    /// Creates a reusable streaming cursor for this scanner's `k`/`p`.
    /// One cursor per worker thread; see [`MinimizerCursor::scan_runs`].
    pub fn cursor(&self) -> MinimizerCursor {
        MinimizerCursor::new(self.k, self.p).expect("scanner params already validated")
    }
}

/// Reusable per-worker state for the streaming minimizer scan.
///
/// Where [`MinimizerScanner::scan`] materialises the read's reverse
/// complement plus two per-position minima vectors, the cursor streams:
/// it rolls the forward p-mer window *and its reverse complement*
/// incrementally (a [`CanonicalKmerCursor`] of length `p` — the rc p-mer
/// is derived arithmetically from the forward window, never from a
/// `revcomp()` copy of the read) and maintains a single monotone deque of
/// **canonical** p-mers. The canonical minimizer of the k-mer at position
/// `i` equals
///
/// ```text
/// min over j in [i, i+K−P] of min(pmer_j, revcomp(pmer_j))
/// ```
///
/// i.e. the windowed minimum of canonical p-mers — exactly what one deque
/// over canonical p-mers yields — because the rc read's p-mers inside the
/// rc k-mer window are the reverse complements of the forward p-mers
/// inside the forward window. That collapses the two-strand scan into one
/// deque with no second pass.
///
/// **Deque invariant:** entries are `(position, canonical p-mer)` with
/// positions strictly increasing and values non-decreasing front-to-back;
/// the front is the window minimum. Each p-mer enters and leaves at most
/// once, so a read of `L` bases is scanned in O(L) with **zero heap
/// allocation** after construction: the deque's capacity (at most
/// `K−P+2` live entries) is reserved up front and reused across reads.
///
/// # Examples
///
/// ```
/// use dna::PackedSeq;
/// use msp::{MinimizerCursor, MinimizerScanner};
///
/// # fn main() -> msp::Result<()> {
/// let read = PackedSeq::from_ascii(b"TGATGGATGAACCAGT");
/// let scanner = MinimizerScanner::new(5, 3)?;
/// let mut cursor = scanner.cursor();
/// let mut runs = Vec::new();
/// cursor.scan_runs(&read, |first, last, m| runs.push((first, last, m)));
/// // Runs tile the k-mer index range and agree with the batch scan.
/// let mins = scanner.scan(&read);
/// assert_eq!(runs.first().unwrap().0, 0);
/// assert_eq!(runs.last().unwrap().1, mins.len() - 1);
/// for &(first, last, m) in &runs {
///     for i in first..=last {
///         assert_eq!(mins[i], m);
///     }
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MinimizerCursor {
    k: usize,
    p: usize,
    /// Number of p-mer positions under one k-mer: `k − p + 1`.
    window: usize,
    /// Rolling forward + reverse-complement p-mer windows.
    pcur: CanonicalKmerCursor,
    /// Monotone deque of `(p-mer position, canonical p-mer)`.
    deque: VecDeque<(u32, Kmer)>,
    /// Single-word fast path: `p ≤ 32` and the scalar escape hatch is
    /// off. Captured at construction so a cursor never switches paths
    /// mid-stream.
    fast: bool,
    /// Ring buffer of the last `window` canonical p-mers (as MSB-aligned
    /// `u64`s) for the fast path's lazy window minimum: slot `j mod
    /// window` holds position `j`'s p-mer, read only on the rare rescans
    /// after the tracked minimum falls out of the window.
    ring64: Vec<u64>,
}

impl MinimizerCursor {
    /// Creates a cursor for k-mers of length `k` and minimizers of length
    /// `p`, reserving all memory the scan will ever need.
    ///
    /// # Errors
    ///
    /// Returns [`MspError::InvalidParams`] unless `1 ≤ p ≤ k ≤ MAX_K`.
    pub fn new(k: usize, p: usize) -> Result<MinimizerCursor> {
        if p < 1 || p > k || k > dna::MAX_K {
            return Err(MspError::InvalidParams { k, p });
        }
        let window = k - p + 1;
        Ok(MinimizerCursor {
            k,
            p,
            window,
            pcur: CanonicalKmerCursor::new(p).expect("1 <= p <= MAX_K"),
            // At most `window + 1` entries are live between the push of a
            // new p-mer and the expiry pop that follows it.
            deque: VecDeque::with_capacity(window + 2),
            fast: p <= 32 && !dna::simd::force_scalar(),
            ring64: vec![0; window],
        })
    }

    /// The k-mer length.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The minimizer length.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Streams `read` once, invoking `emit(first, last, minimizer)` for
    /// each **maximal equal-minimizer run** of k-mer positions — the
    /// superkmer boundaries of the paper's Definition 2. Produces exactly
    /// the runs of [`MinimizerScanner::scan`] grouped by equality, without
    /// allocating: no `revcomp` copy, no minima vectors, no output `Vec`.
    ///
    /// Emits nothing for reads shorter than `k`. The cursor resets itself,
    /// so it can be reused across reads (and that reuse is what makes the
    /// per-read hot loop allocation-free).
    pub fn scan_runs<F: FnMut(usize, usize, Kmer)>(&mut self, read: &PackedSeq, mut emit: F) {
        if read.len() < self.k {
            return;
        }
        if self.fast {
            return self.scan_runs_fast(read, &mut emit);
        }
        self.pcur.reset();
        self.deque.clear();
        let n_kmers = read.len() - self.k + 1;
        let mut run_start = 0usize;
        // Placeholder until the first window completes (kpos == 0 path).
        let mut run_min: Kmer = Kmer::from_bases(1, [dna::Base::A]).expect("valid 1-mer");
        for (i, base) in read.bases().enumerate() {
            self.pcur.push(base);
            if i + 1 < self.p {
                continue;
            }
            let j = i + 1 - self.p; // p-mer position
            let (canon, _) = self.pcur.canonical();
            while self.deque.back().is_some_and(|&(_, back)| back > canon) {
                self.deque.pop_back();
            }
            self.deque.push_back((j as u32, canon));
            if j + 1 >= self.window {
                let kpos = j + 1 - self.window; // k-mer position
                while self.deque.front().is_some_and(|&(pos, _)| (pos as usize) < kpos) {
                    self.deque.pop_front();
                }
                let m = self.deque.front().expect("deque non-empty").1;
                if kpos == 0 {
                    run_min = m;
                } else if m != run_min {
                    emit(run_start, kpos - 1, run_min);
                    run_start = kpos;
                    run_min = m;
                }
            }
        }
        emit(run_start, n_kmers - 1, run_min);
    }

    /// Word-at-a-time scan for `p ≤ 32`: the canonical p-mer fits one
    /// MSB-aligned `u64`, so both strands roll with two shifts and an OR
    /// per base, comparisons are plain integer compares, and the packed
    /// read is consumed a 64-bit word (32 bases) at a time instead of
    /// through the per-base iterator. Bitwise-identical to the generic
    /// path — a `u64` holding the top word of a left-aligned [`Kmer`]
    /// orders exactly like the four-word key (words 1..3 are zero for
    /// `p ≤ 32`), and the update steps are the one-word instances of
    /// [`CanonicalKmerCursor`]'s shift loops.
    ///
    /// The window minimum here is *lazy* rather than the generic path's
    /// monotone deque: track the current minimum's value and (latest)
    /// position, and only when that position slides out of the window
    /// rescan the `window` buffered p-mers in [`ring64`](Self::ring64).
    /// The common per-base cost is one ring store plus one compare; the
    /// O(window) rescan fires only when the minimum expires (≈ 1/window
    /// of positions on random sequence). Both strategies compute the same
    /// windowed minimum *value*, and runs depend only on values, so the
    /// emitted runs are identical.
    fn scan_runs_fast<F: FnMut(usize, usize, Kmer)>(&mut self, read: &PackedSeq, emit: &mut F) {
        let p = self.p;
        let window = self.window;
        // New forward base lands at bits [64−2p, 65−2p); the expiring one
        // shifts out of the top. `p = 32` makes the mask a no-op `!0`.
        let shift = 64 - 2 * p;
        let pmask = !0u64 << shift;
        let materialise = |v: u64| {
            Kmer::from_words([v, 0, 0, 0], p).expect("p-mer tail bits are zero")
        };
        let ring = &mut self.ring64[..window];
        let len = read.len();
        let n_kmers = len - self.k + 1;
        let mut fwd = 0u64;
        let mut rc = 0u64;
        let mut run_start = 0usize;
        let mut run_min = 0u64; // placeholder until kpos == 0 assigns
        let mut min_val = u64::MAX;
        let mut min_pos = 0usize;
        let mut slot = 0usize; // == j mod window
        let mut seen = 0usize; // bases consumed so far
        for (w, &packed) in read.words().iter().enumerate() {
            let mut word = packed;
            let in_word = (len - w * 32).min(32);
            for _ in 0..in_word {
                let code = word & 3;
                word >>= 2;
                fwd = (fwd << 2) | (code << shift);
                rc = ((rc >> 2) & pmask) | ((code ^ 3) << 62);
                seen += 1;
                if seen < p {
                    continue;
                }
                let j = seen - p; // p-mer position
                let canon = fwd.min(rc);
                ring[slot] = canon;
                // `<=` keeps min_pos at the *latest* minimal position,
                // postponing expiry rescans as long as possible.
                if canon <= min_val {
                    min_val = canon;
                    min_pos = j;
                } else if min_pos + window <= j {
                    // The minimum fell out of the window [j+1−window, j]:
                    // rescan the ring oldest-first (the rescan only fires
                    // once j ≥ window, so every slot holds an in-window
                    // p-mer).
                    min_val = u64::MAX;
                    let mut s = slot + 1;
                    for d in 0..window {
                        if s >= window {
                            s = 0;
                        }
                        let v = ring[s];
                        if v <= min_val {
                            min_val = v;
                            min_pos = j + 1 - window + d;
                        }
                        s += 1;
                    }
                }
                slot += 1;
                if slot == window {
                    slot = 0;
                }
                if j + 1 >= window {
                    let kpos = j + 1 - window; // k-mer position
                    if kpos == 0 {
                        run_min = min_val;
                    } else if min_val != run_min {
                        emit(run_start, kpos - 1, materialise(run_min));
                        run_start = kpos;
                        run_min = min_val;
                    }
                }
            }
        }
        emit(run_start, n_kmers - 1, materialise(run_min));
    }
}

/// Minimum p-mer in every length-`window` window of p-mer positions, via a
/// monotone deque. Returns one entry per window, i.e.
/// `len − p + 1 − window + 1` values.
fn window_minima(seq: &PackedSeq, p: usize, window: usize) -> Vec<Kmer> {
    let n_pmers = seq.len() + 1 - p;
    let mut out = Vec::with_capacity(n_pmers + 1 - window);
    // Deque of (position, pmer); values increase from front to back.
    let mut deque: VecDeque<(usize, Kmer)> = VecDeque::new();
    for (i, pmer) in seq.kmers(p).enumerate() {
        while deque.back().is_some_and(|&(_, back)| back > pmer) {
            deque.pop_back();
        }
        deque.push_back((i, pmer));
        // Window covering p-mer positions [i + 1 − window, i].
        if i + 1 >= window {
            let start = i + 1 - window;
            while deque.front().is_some_and(|&(pos, _)| pos < start) {
                deque.pop_front();
            }
            out.push(deque.front().expect("deque non-empty").1);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> PackedSeq {
        PackedSeq::from_ascii(s.as_bytes())
    }

    #[test]
    fn brute_force_on_known_example() {
        let k: Kmer = "GATTACA".parse().unwrap();
        // fwd 2-mers: GA AT TT TA AC CA ; rc = TGTAATC: TG GT TA AA AT TC.
        assert_eq!(minimizer_of_kmer(&k, 2).to_string(), "AA");
        assert_eq!(minimizer_of_kmer(&k, 7).to_string(), "GATTACA");
        assert_eq!(minimizer_of_kmer(&k, 1).to_string(), "A");
    }

    #[test]
    fn minimizer_is_strand_invariant() {
        for s in ["ACGTTGCA", "TGATGGATG", "CCCCCGGGG"] {
            let k: Kmer = s.parse().unwrap();
            for p in 1..=s.len() {
                assert_eq!(
                    minimizer_of_kmer(&k, p),
                    minimizer_of_kmer(&k.revcomp(), p),
                    "s={s} p={p}"
                );
            }
        }
    }

    #[test]
    fn scanner_matches_naive() {
        let reads = [
            "ACGTTGCATGGACCAGTTACGGA",
            "AAAAAAAAAAAAAAA",
            "TGATGGATGATGGATGGTAGCAT",
            "ACGT",
        ];
        for r in reads {
            let read = seq(r);
            for (k, p) in [(4, 1), (4, 4), (5, 3), (7, 4), (15, 11)] {
                if read.len() < k {
                    continue;
                }
                let sc = MinimizerScanner::new(k, p).unwrap();
                assert_eq!(sc.scan(&read), sc.scan_naive(&read), "read={r} k={k} p={p}");
            }
        }
    }

    #[test]
    fn short_read_yields_nothing() {
        let sc = MinimizerScanner::new(10, 4).unwrap();
        assert!(sc.scan(&seq("ACGT")).is_empty());
        assert!(sc.scan_naive(&seq("ACGT")).is_empty());
    }

    #[test]
    fn read_of_exactly_k() {
        let sc = MinimizerScanner::new(6, 3).unwrap();
        let read = seq("GATTAC");
        let mins = sc.scan(&read);
        assert_eq!(mins.len(), 1);
        assert_eq!(mins[0], minimizer_of_kmer(&read.kmer_at(0, 6).unwrap(), 3));
    }

    #[test]
    fn p_equal_k_minimizer_is_canonical_kmer() {
        let sc = MinimizerScanner::new(5, 5).unwrap();
        let read = seq("TGATGGA");
        let mins = sc.scan(&read);
        for (i, m) in mins.iter().enumerate() {
            let kmer = read.kmer_at(i, 5).unwrap();
            assert_eq!(*m, kmer.canonical().0);
        }
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(matches!(MinimizerScanner::new(5, 0), Err(MspError::InvalidParams { .. })));
        assert!(matches!(MinimizerScanner::new(5, 6), Err(MspError::InvalidParams { .. })));
        assert!(matches!(MinimizerScanner::new(dna::MAX_K + 1, 3), Err(MspError::InvalidParams { .. })));
        assert!(MinimizerScanner::new(1, 1).is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid minimizer length")]
    fn brute_force_rejects_p_zero() {
        minimizer_of_kmer(&"ACGT".parse().unwrap(), 0);
    }

    /// Reference run-cutting from a per-position minimizer vector.
    fn runs_of(mins: &[Kmer]) -> Vec<(usize, usize, Kmer)> {
        let mut out = Vec::new();
        let mut start = 0usize;
        for pos in 1..=mins.len() {
            if pos == mins.len() || mins[pos] != mins[start] {
                out.push((start, pos - 1, mins[start]));
                start = pos;
            }
        }
        out
    }

    fn collect_runs(cursor: &mut MinimizerCursor, read: &PackedSeq) -> Vec<(usize, usize, Kmer)> {
        let mut runs = Vec::new();
        cursor.scan_runs(read, |f, l, m| runs.push((f, l, m)));
        runs
    }

    #[test]
    fn scan_runs_matches_batch_scan() {
        let reads = [
            "ACGTTGCATGGACCAGTTACGGATCAGGCATTAGCCAGTACGGATCA",
            "AAAAAAAAAAAAAAAAAAAA",
            "ATATATATATATATATATAT",
            "TGATGGATGATGGATGGTAGCAT",
            "GATTACA",
        ];
        for r in reads {
            let read = seq(r);
            for (k, p) in [(4, 1), (4, 4), (5, 3), (7, 4), (7, 7), (15, 11), (20, 1)] {
                if read.len() < k {
                    continue;
                }
                let sc = MinimizerScanner::new(k, p).unwrap();
                let mut cursor = sc.cursor();
                let got = collect_runs(&mut cursor, &read);
                let want = runs_of(&sc.scan(&read));
                assert_eq!(got, want, "read={r} k={k} p={p}");
            }
        }
    }

    #[test]
    fn cursor_is_reusable_across_reads() {
        let sc = MinimizerScanner::new(7, 4).unwrap();
        let mut cursor = sc.cursor();
        for r in ["ACGTTGCATGGACCAGTTACGGATCA", "TTTTTTTTTT", "GATTACAGATTACA"] {
            let read = seq(r);
            assert_eq!(collect_runs(&mut cursor, &read), runs_of(&sc.scan(&read)), "read={r}");
        }
    }

    #[test]
    fn scan_runs_short_read_emits_nothing() {
        let mut cursor = MinimizerCursor::new(10, 4).unwrap();
        assert!(collect_runs(&mut cursor, &seq("ACGT")).is_empty());
        assert!(collect_runs(&mut cursor, &seq("")).is_empty());
    }

    #[test]
    fn scan_runs_exactly_k_read_is_one_run() {
        let sc = MinimizerScanner::new(6, 3).unwrap();
        let read = seq("GATTAC");
        let runs = collect_runs(&mut sc.cursor(), &read);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].0, 0);
        assert_eq!(runs[0].1, 0);
        assert_eq!(runs[0].2, minimizer_of_kmer(&read.kmer_at(0, 6).unwrap(), 3));
    }

    #[test]
    fn scan_runs_homopolymer_is_one_run() {
        // Every k-mer shares the same minimizer: exactly one run.
        let read = seq(&"A".repeat(40));
        let runs = collect_runs(&mut MinimizerCursor::new(9, 4).unwrap(), &read);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].0, 0);
        assert_eq!(runs[0].1, 40 - 9);
    }

    #[test]
    fn cursor_rejects_invalid_params() {
        assert!(matches!(MinimizerCursor::new(5, 0), Err(MspError::InvalidParams { .. })));
        assert!(matches!(MinimizerCursor::new(5, 6), Err(MspError::InvalidParams { .. })));
        assert!(MinimizerCursor::new(dna::MAX_K, dna::MAX_K).is_ok());
    }

    #[test]
    fn fast_and_generic_paths_agree() {
        let _guard = dna::simd::override_guard();
        // Deterministic xorshift corpus: varied lengths straddling word
        // boundaries plus low-complexity tails.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut read_of = |len: usize, tail_a: usize| {
            let mut s = String::new();
            for i in 0..len {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let ch = if i + tail_a >= len {
                    'A'
                } else {
                    ['A', 'C', 'G', 'T'][(state >> 33) as usize % 4]
                };
                s.push(ch);
            }
            s
        };
        let reads: Vec<String> = [31, 32, 33, 63, 64, 65, 200]
            .iter()
            .flat_map(|&len| [read_of(len, 0), read_of(len, len / 3)])
            .collect();
        for (k, p) in [(5, 1), (7, 7), (15, 7), (31, 16), (33, 32), (64, 32), (45, 13)] {
            dna::simd::set_force_scalar_override(Some(true));
            let mut generic = MinimizerCursor::new(k, p).unwrap();
            dna::simd::set_force_scalar_override(Some(false));
            let mut fast = MinimizerCursor::new(k, p).unwrap();
            dna::simd::set_force_scalar_override(None);
            assert!(!generic.fast && fast.fast, "construction must capture the mode");
            for r in &reads {
                let read = seq(r);
                assert_eq!(
                    collect_runs(&mut fast, &read),
                    collect_runs(&mut generic, &read),
                    "k={k} p={p} read={r}"
                );
            }
        }
    }

    #[test]
    fn wide_p_uses_generic_path() {
        let cursor = MinimizerCursor::new(80, 40).unwrap();
        assert!(!cursor.fast, "p > 32 cannot take the single-word path");
    }

    #[test]
    fn larger_p_fragments_runs_more() {
        // The paper's Fig 6 observation: larger P ⇒ more, shorter superkmer
        // runs. Here: more distinct adjacent-minimizer changes.
        let read = seq(&"ACGTTGCATGGACCAGTTACGGATCAGGCATTAGCCAGT".repeat(4));
        let changes = |p: usize| {
            let mins = MinimizerScanner::new(15, p).unwrap().scan(&read);
            mins.windows(2).filter(|w| w[0] != w[1]).count()
        };
        assert!(changes(13) >= changes(5), "larger P should fragment at least as much");
    }
}
