//! Scheduler-determinism matrix for model-driven co-processing: whatever
//! split policy steers Step 2's partition dispatch — `cpu` (no offload),
//! `static:<frac>` (pinned fraction), or `auto` (the §IV Eq. 2 online
//! tuner) — the built graph **and** the persisted per-partition subgraph
//! files must be byte-identical, across CPU thread counts and across the
//! partition-budget spectrum. The policy may only move partitions between
//! executors; it must never change what any partition contains.
//!
//! The CI workflow reruns this suite with `PARAHASH_FORCE_SCALAR=1` (the
//! SIMD escape hatch) and with `PARAHASH_SPLIT` overriding the policy
//! from the environment, so the scalar × policy cross-product is covered
//! without further test code here.

use datagen::{GenomeSpec, Sequencer, SequencingSpec};
use dna::SeqRead;
use hetsim::SimGpuConfig;
use parahash::{ParaHash, ParaHashConfig, SplitPolicy};
use pipeline::IoMode;

const K: usize = 15;
const P: usize = 7;
const PARTS: usize = 12;

fn corpus() -> Vec<SeqRead> {
    let genome = GenomeSpec::new(3_000).seed(42).repeat_fraction(0.3).generate();
    let spec = SequencingSpec {
        read_len: 80,
        coverage: 5.0,
        lambda: 1.0,
        reverse_strand_prob: 0.5,
        seed: 42,
    };
    Sequencer::new(spec).sequence(&genome)
}

/// A fused-run config with one CPU device, one simulated GPU, and the
/// given split policy. Subgraphs are persisted so byte-level identity of
/// the per-partition artifacts can be checked, not just graph equality.
fn config(dir: &str, threads: usize, budget: u64, split: SplitPolicy) -> ParaHashConfig {
    let cfg = ParaHashConfig::builder()
        .k(K)
        .p(P)
        .partitions(PARTS)
        .cpu_threads(threads)
        .sim_gpu(SimGpuConfig::default())
        .split(split)
        .read_batch_bytes(1024)
        .partition_memory_budget(budget)
        .write_subgraphs(true)
        .io_mode(IoMode::Unthrottled)
        .work_dir(std::env::temp_dir().join(dir))
        .build()
        .unwrap();
    let _ = std::fs::remove_dir_all(cfg.work_dir());
    cfg
}

/// Reads every persisted subgraph file back, in partition order.
fn subgraph_bytes(cfg: &ParaHashConfig) -> Vec<Vec<u8>> {
    let dir = cfg.work_dir().join("subgraphs");
    (0..PARTS)
        .map(|i| std::fs::read(dir.join(format!("sub-{i:05}.dbg"))).unwrap_or_default())
        .collect()
}

#[test]
fn split_policies_build_identical_graphs() {
    let reads = corpus();
    // Reference: CPU-only policy (the GPU sits idle even though it is in
    // the roster) on a mid-sized run.
    let (ref_graph, ref_subs) = {
        let cfg = config("parahash-coproc-ref", 4, 0, SplitPolicy::CpuOnly);
        let ph = ParaHash::new(cfg).unwrap();
        let out = ph.run_fused(&reads).unwrap();
        let subs = subgraph_bytes(ph.config());
        std::fs::remove_dir_all(ph.config().work_dir()).unwrap();
        (out.graph, subs)
    };
    assert!(ref_graph.distinct_vertices() > 100, "corpus too small to be meaningful");

    let policies = [
        ("cpu", SplitPolicy::CpuOnly),
        ("stat25", SplitPolicy::Static(0.25)),
        ("stat75", SplitPolicy::Static(0.75)),
        ("auto", SplitPolicy::Auto),
    ];
    for threads in [1usize, 4, 8] {
        for (bname, budget) in [("spill", 0u64), ("huge", u64::MAX)] {
            for (pname, policy) in policies {
                let dir = format!("parahash-coproc-t{threads}-{bname}-{pname}");
                let cfg = config(&dir, threads, budget, policy);
                let ph = ParaHash::new(cfg).unwrap();
                let out = ph.run_fused(&reads).unwrap();
                assert_eq!(
                    out.graph, ref_graph,
                    "policy {pname} (threads={threads}, budget={bname}) changed the graph"
                );
                assert_eq!(
                    subgraph_bytes(ph.config()),
                    ref_subs,
                    "policy {pname} (threads={threads}, budget={bname}) changed a subgraph file"
                );

                // The run report must carry the coproc ledger, and its
                // executor counts must respect the policy.
                let coproc = out.report.step2.coproc.as_ref().expect("steered run reports coproc");
                assert_eq!(coproc.cpu_partitions + coproc.gpu_partitions, PARTS);
                match policy {
                    SplitPolicy::CpuOnly => {
                        assert_eq!(coproc.gpu_partitions, 0, "cpu policy must not offload");
                        assert_eq!(coproc.gpu_share, 0.0);
                    }
                    SplitPolicy::Static(f) => {
                        // Deficit rounding pins the class sizes exactly.
                        let want = ((PARTS as f64) * f).round() as usize;
                        assert!(
                            coproc.gpu_partitions.abs_diff(want) <= 1,
                            "static:{f} sent {} partitions to the GPU, wanted ~{want}",
                            coproc.gpu_partitions
                        );
                    }
                    SplitPolicy::Auto => {
                        assert!((0.0..=1.0).contains(&coproc.gpu_share));
                    }
                }
                assert!(
                    out.report.summary().contains("coproc:"),
                    "summary must surface the split: {}",
                    out.report.summary()
                );
                std::fs::remove_dir_all(ph.config().work_dir()).unwrap();
            }
        }
    }
}

#[test]
fn gpuless_roster_ignores_gpu_hungry_policies() {
    let reads = corpus();
    // No `.sim_gpu(...)`: even static:1.0 and auto must degrade to pure
    // CPU execution without error and without changing the result.
    let build = |dir: &str, split: SplitPolicy| {
        let cfg = ParaHashConfig::builder()
            .k(K)
            .p(P)
            .partitions(PARTS)
            .cpu_threads(2)
            .split(split)
            .partition_memory_budget(0)
            .io_mode(IoMode::Unthrottled)
            .work_dir(std::env::temp_dir().join(dir))
            .build()
            .unwrap();
        let _ = std::fs::remove_dir_all(cfg.work_dir());
        let ph = ParaHash::new(cfg).unwrap();
        let out = ph.run_fused(&reads).unwrap();
        std::fs::remove_dir_all(ph.config().work_dir()).unwrap();
        out
    };
    let cpu = build("parahash-coproc-nogpu-cpu", SplitPolicy::CpuOnly);
    let greedy = build("parahash-coproc-nogpu-greedy", SplitPolicy::Static(1.0));
    let auto = build("parahash-coproc-nogpu-auto", SplitPolicy::Auto);
    assert_eq!(cpu.graph, greedy.graph);
    assert_eq!(cpu.graph, auto.graph);
    for out in [&greedy, &auto] {
        let coproc = out.report.step2.coproc.as_ref().expect("coproc ledger present");
        assert_eq!(coproc.gpu_partitions, 0, "no GPU in the roster, nothing may offload");
    }
}

#[test]
fn static_split_actually_offloads() {
    // Sanity for the whole matrix above: with a GPU present and a
    // half-and-half static split, both executor classes really run.
    let reads = corpus();
    let cfg = config("parahash-coproc-offload", 4, u64::MAX, SplitPolicy::Static(0.5));
    let ph = ParaHash::new(cfg).unwrap();
    let out = ph.run_fused(&reads).unwrap();
    let coproc = out.report.step2.coproc.as_ref().unwrap();
    assert!(coproc.gpu_partitions > 0, "static:0.5 must offload some partitions");
    assert!(coproc.cpu_partitions > 0, "static:0.5 must keep some partitions on the CPU");
    let gpu_time: std::time::Duration = out.report.step2.gpu_compute;
    assert!(gpu_time > std::time::Duration::ZERO, "offloaded work must accrue GPU time");
    std::fs::remove_dir_all(ph.config().work_dir()).unwrap();
}
