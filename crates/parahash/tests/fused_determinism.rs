//! Fused-vs-two-phase equivalence: the fused Step-1→Step-2 pipeline
//! (in-memory partition handoff with bounded spill, streaming Step-2
//! scheduler, pooled hash tables) must build a graph **byte-identical**
//! to the classic two-phase flow — across CPU thread counts and across
//! the whole budget spectrum (all-spill, mixed, all-resident) — while
//! honouring the resident-byte budget, and must preserve the two-phase
//! quarantine semantics when a spilled partition file is corrupted
//! mid-run.

use std::path::PathBuf;
use std::sync::Mutex;

use datagen::{GenomeSpec, Sequencer, SequencingSpec};
use dna::SeqRead;
use parahash::{ParaHash, ParaHashConfig, RunOutcome};
use pipeline::{IoMode, IoOp, ThrottledIo};

const K: usize = 15;
const P: usize = 7;
const PARTS: usize = 12;

fn corpus() -> Vec<SeqRead> {
    let genome = GenomeSpec::new(3_000).seed(42).repeat_fraction(0.3).generate();
    let spec = SequencingSpec {
        read_len: 80,
        coverage: 5.0,
        lambda: 1.0,
        reverse_strand_prob: 0.5,
        seed: 42,
    };
    Sequencer::new(spec).sequence(&genome)
}

fn config(dir: &str, threads: usize, budget: u64, strict: bool) -> ParaHashConfig {
    let cfg = ParaHashConfig::builder()
        .k(K)
        .p(P)
        .partitions(PARTS)
        .cpu_threads(threads)
        .read_batch_bytes(1024)
        .partition_memory_budget(budget)
        .strict(strict)
        .io_mode(IoMode::Unthrottled)
        .work_dir(std::env::temp_dir().join(dir))
        .build()
        .unwrap();
    let _ = std::fs::remove_dir_all(cfg.work_dir());
    cfg
}

fn spill_files(cfg: &ParaHashConfig) -> Vec<usize> {
    let dir = cfg.work_dir().join("superkmers");
    (0..PARTS).filter(|i| dir.join(format!("part-{i:05}.skm")).exists()).collect()
}

#[test]
fn fused_matches_two_phase_across_threads_and_budgets() {
    let reads = corpus();
    let reference = {
        let cfg = config("parahash-fused-ref", 4, 0, true);
        let ph = ParaHash::new(cfg).unwrap();
        let out = ph.run(&reads).unwrap();
        std::fs::remove_dir_all(ph.config().work_dir()).unwrap();
        out
    };
    assert!(reference.graph.distinct_vertices() > 100, "corpus too small to be meaningful");

    for threads in [1usize, 2, 4, 8] {
        for (name, budget) in [("spill", 0u64), ("tiny", 1024), ("huge", u64::MAX)] {
            let cfg = config(&format!("parahash-fused-t{threads}-{name}"), threads, budget, true);
            let ph = ParaHash::new(cfg).unwrap();
            let fused: RunOutcome = ph.run_fused(&reads).unwrap();
            assert_eq!(
                fused.graph, reference.graph,
                "fused (threads={threads}, budget={name}) diverged from two-phase"
            );

            // The budget invariant, as observed by the run report.
            let peak = fused.report.step1.peak_resident_store_bytes;
            assert!(
                peak <= budget,
                "resident peak {peak} exceeds budget {budget} (threads={threads})"
            );
            let spilled = spill_files(ph.config());
            match budget {
                0 => {
                    assert_eq!(peak, 0, "budget 0 must never hold resident bytes");
                    assert!(!spilled.is_empty(), "budget 0 must leave spill files");
                }
                1024 => {
                    assert!(peak > 0, "a non-zero budget should stage some bytes");
                    assert!(!spilled.is_empty(), "a tiny budget must spill the overflow");
                }
                _ => {
                    assert!(peak > 0);
                    assert!(
                        spilled.is_empty(),
                        "unbounded budget must not touch the disk, found {spilled:?}"
                    );
                    // ... and the manifest records every partition resident.
                    let manifest =
                        msp::PartitionManifest::load(ph.config().work_dir().join("superkmers"))
                            .unwrap();
                    let residency = manifest.residency().expect("store manifests carry residency");
                    assert!(residency.iter().all(|&r| r), "all partitions resident");
                }
            }
            std::fs::remove_dir_all(ph.config().work_dir()).unwrap();
        }
    }
}

#[test]
fn fused_fastq_matches_two_phase_streaming() {
    let reads = corpus();
    let path = std::env::temp_dir().join(format!("parahash-fused-{}.fastq", std::process::id()));
    {
        let mut w = dna::FastqWriter::new(std::fs::File::create(&path).unwrap());
        for r in &reads {
            w.write_record(r).unwrap();
        }
        w.into_inner().unwrap().sync_all().unwrap();
    }
    let two_phase = {
        let cfg = config("parahash-fusedfq-ref", 2, 0, true);
        let ph = ParaHash::new(cfg).unwrap();
        let out = ph.run_fastq_streaming(&path).unwrap();
        std::fs::remove_dir_all(ph.config().work_dir()).unwrap();
        out
    };
    for budget in [0u64, 1024, u64::MAX] {
        let cfg = config(&format!("parahash-fusedfq-{budget:x}"), 2, budget, true);
        let ph = ParaHash::new(cfg).unwrap();
        let fused = ph.run_fused_fastq(&path).unwrap();
        assert_eq!(fused.graph, two_phase.graph, "fastq fused diverged at budget {budget}");
        std::fs::remove_dir_all(ph.config().work_dir()).unwrap();
    }
    std::fs::remove_file(&path).unwrap();
}

/// A fault hook that corrupts the *first* spilled partition file it sees
/// being read back (flips one payload byte, breaking the frame CRC32),
/// then lets the read proceed. Returns which file was hit.
fn corrupt_first_spill_read(io: &ThrottledIo) -> std::sync::Arc<Mutex<Option<PathBuf>>> {
    let victim: std::sync::Arc<Mutex<Option<PathBuf>>> =
        std::sync::Arc::new(Mutex::new(None));
    let seen = victim.clone();
    io.set_fault_hook(Box::new(move |path, op, attempt| {
        if op != IoOp::Read || attempt != 1 {
            return None;
        }
        let is_part = path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.starts_with("part-") && n.ends_with(".skm"));
        if !is_part {
            return None;
        }
        let mut guard = seen.lock().unwrap();
        if guard.is_none() {
            let mut bytes = std::fs::read(path).expect("victim spill file readable");
            assert!(bytes.len() > msp::FRAME_HEADER_LEN, "victim must hold a frame");
            bytes[msp::FRAME_HEADER_LEN] ^= 0xff;
            std::fs::write(path, &bytes).expect("victim spill file writable");
            *guard = Some(path.to_path_buf());
        }
        None
    }));
    victim
}

#[test]
fn fused_quarantines_corrupted_spill_in_non_strict_mode() {
    let reads = corpus();
    let cfg = config("parahash-fused-quarantine", 2, 0, false);
    let ph = ParaHash::new(cfg).unwrap();
    let io = ThrottledIo::new(IoMode::Unthrottled);
    let victim = corrupt_first_spill_read(&io);

    let fused = ph.run_fused_with_io(&reads, &io).unwrap();
    let victim = victim.lock().unwrap().clone().expect("a spill file must have been read");
    assert_eq!(fused.report.step2.quarantined.len(), 1, "exactly one partition set aside");
    let q = &fused.report.step2.quarantined[0];
    assert!(q.reason.contains("checksum mismatch"), "{}", q.reason);
    assert_eq!(
        victim.file_name().and_then(|n| n.to_str()).unwrap(),
        format!("part-{:05}.skm", q.index),
        "quarantined index must match the corrupted file"
    );

    // The graph is missing exactly the victim's k-mers, and the mark was
    // persisted into the on-disk manifest by the fused driver.
    let manifest = msp::PartitionManifest::load(ph.config().work_dir().join("superkmers")).unwrap();
    assert!(manifest.is_quarantined(q.index));
    assert_eq!(
        fused.graph.total_kmer_occurrences(),
        manifest.total_kmers() - manifest.stats()[q.index].kmers
    );
    assert!(fused.report.summary().contains("QUARANTINED"));
    std::fs::remove_dir_all(ph.config().work_dir()).unwrap();
}

#[test]
fn fused_strict_mode_aborts_on_corrupted_spill() {
    let reads = corpus();
    let cfg = config("parahash-fused-strictspill", 2, 0, true);
    let ph = ParaHash::new(cfg).unwrap();
    let io = ThrottledIo::new(IoMode::Unthrottled);
    let victim = corrupt_first_spill_read(&io);

    let result = ph.run_fused_with_io(&reads, &io);
    assert!(result.is_err(), "strict mode must surface spill corruption as an error");
    assert!(victim.lock().unwrap().is_some(), "the fault must actually have fired");
    let _ = std::fs::remove_dir_all(ph.config().work_dir());
}
