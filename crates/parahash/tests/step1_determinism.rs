//! Step-1 output invariance: the sharded, lock-free emit path must
//! produce the *same partitioning* regardless of how many CPU threads
//! race over the staging shards, and must agree byte-for-byte (modulo
//! record order) with the reference owned/in-memory partitioner on a
//! fuzzed corpus.

use datagen::{GenomeSpec, Sequencer, SequencingSpec};
use dna::SeqRead;
use parahash::{run_step1, ParaHashConfig};
use pipeline::{IoMode, ThrottledIo};

const K: usize = 15;
const P: usize = 7;
const PARTS: usize = 16;

fn corpus(seed: u64) -> Vec<SeqRead> {
    let genome = GenomeSpec::new(4_000).seed(seed).repeat_fraction(0.3).generate();
    let spec = SequencingSpec {
        read_len: 80,
        coverage: 6.0,
        lambda: 1.0,
        reverse_strand_prob: 0.5,
        seed,
    };
    Sequencer::new(spec).sequence(&genome)
}

/// One partition's identity: `(superkmers, kmers)` manifest counts plus
/// the sorted multiset of encoded records.
type PartitionId = ((u64, u64), Vec<Vec<u8>>);

/// Runs Step 1 with `threads` CPU workers and returns, per partition, the
/// `(superkmers, kmers)` manifest counts plus the *sorted* multiset of
/// encoded records (order inside a partition file is scheduling-dependent;
/// content is not).
fn partition_fingerprint(reads: &[SeqRead], threads: usize, dir: &str) -> Vec<PartitionId> {
    let cfg = ParaHashConfig::builder()
        .k(K)
        .p(P)
        .partitions(PARTS)
        .cpu_threads(threads)
        .read_batch_bytes(1024)
        .work_dir(std::env::temp_dir().join(dir))
        .build()
        .unwrap();
    let _ = std::fs::remove_dir_all(cfg.work_dir());
    let io = ThrottledIo::new(IoMode::Unthrottled);
    let (manifest, report) = run_step1(&cfg, reads, &io).unwrap();
    let stats = report.step1_stats.expect("step1 reports emit stats");
    assert_eq!(stats.kmers, manifest.total_kmers(), "threads={threads}");
    assert_eq!(stats.superkmers, manifest.total_superkmers(), "threads={threads}");
    let mut out = Vec::with_capacity(PARTS);
    for i in 0..PARTS {
        let sks = msp::PartitionReader::open(&manifest, i).unwrap().read_all().unwrap();
        let mut records: Vec<Vec<u8>> = sks
            .iter()
            .map(|sk| {
                let mut b = Vec::new();
                msp::encode_superkmer(sk, &mut b);
                b
            })
            .collect();
        records.sort();
        let stat = &manifest.stats()[i];
        out.push(((stat.superkmers, stat.kmers), records));
    }
    let _ = std::fs::remove_dir_all(cfg.work_dir());
    out
}

#[test]
fn step1_output_is_thread_count_invariant() {
    let reads = corpus(42);
    let reference = partition_fingerprint(&reads, 1, "parahash-det-t1");
    for threads in [2, 4, 8] {
        let got = partition_fingerprint(&reads, threads, &format!("parahash-det-t{threads}"));
        for (i, (want, have)) in reference.iter().zip(&got).enumerate() {
            assert_eq!(want.0, have.0, "partition {i} counts differ at {threads} threads");
            assert_eq!(want.1, have.1, "partition {i} records differ at {threads} threads");
        }
    }
}

#[test]
fn step1_matches_owned_reference_on_fuzzed_corpus() {
    for seed in [7u64, 99, 1234] {
        let reads = corpus(seed);
        let seqs: Vec<dna::PackedSeq> = reads.iter().map(|r| r.seq().clone()).collect();
        let expected = msp::partition_in_memory(&seqs, K, P, PARTS).unwrap();

        let got = partition_fingerprint(&reads, 4, &format!("parahash-det-ref-{seed}"));
        for (i, want_sks) in expected.iter().enumerate() {
            // Reference side: encode the owned superkmers with the owned
            // encoder; the streaming path wrote its records with the
            // borrowed slice encoder. Byte equality of the sorted record
            // sets proves the two emit paths are byte-identical.
            let mut want: Vec<Vec<u8>> = want_sks
                .iter()
                .map(|sk| {
                    let mut b = Vec::new();
                    msp::encode_superkmer(sk, &mut b);
                    b
                })
                .collect();
            want.sort();
            let want_counts = (
                want_sks.len() as u64,
                want_sks.iter().map(|s| s.kmer_count() as u64).sum::<u64>(),
            );
            assert_eq!(got[i].0, want_counts, "partition {i} counts (seed {seed})");
            assert_eq!(got[i].1, want, "partition {i} payload (seed {seed})");
        }
    }
}
