//! SIMD/scalar equivalence at the system level: every vectorized kernel
//! (word-parallel packing, single-word minimizer scan, prefetched table
//! probes, chunked parallel FASTQ ingest) must leave the final graph
//! **byte-identical** to the forced-scalar fallbacks, across thread
//! counts and input framings (plain, gzip, BGZF). The acceptance gate of
//! the SIMD work: `PARAHASH_FORCE_SCALAR=1` is a pure performance knob.

use datagen::{GenomeSpec, Sequencer, SequencingSpec};
use dna::SeqRead;
use parahash::{ParaHash, ParaHashConfig, RunOutcome};
use pipeline::IoMode;

const K: usize = 15;
const P: usize = 7;
const PARTS: usize = 12;

fn corpus() -> Vec<SeqRead> {
    let genome = GenomeSpec::new(3_000).seed(1117).repeat_fraction(0.3).generate();
    let spec = SequencingSpec {
        read_len: 80,
        coverage: 5.0,
        lambda: 1.0,
        reverse_strand_prob: 0.5,
        seed: 1117,
    };
    Sequencer::new(spec).sequence(&genome)
}

fn config(dir: &str, threads: usize) -> ParaHashConfig {
    let cfg = ParaHashConfig::builder()
        .k(K)
        .p(P)
        .partitions(PARTS)
        .cpu_threads(threads)
        .read_batch_bytes(2048)
        .io_mode(IoMode::Unthrottled)
        .work_dir(std::env::temp_dir().join(dir))
        .build()
        .unwrap();
    let _ = std::fs::remove_dir_all(cfg.work_dir());
    cfg
}

fn write_fastq(path: &std::path::Path, reads: &[SeqRead]) {
    let mut w = dna::FastqWriter::new(std::fs::File::create(path).unwrap());
    for r in reads {
        w.write_record(r).unwrap();
    }
    w.into_inner().unwrap();
}

fn run_streaming(dir: &str, threads: usize, path: &std::path::Path) -> RunOutcome {
    let ph = ParaHash::new(config(dir, threads)).unwrap();
    let out = ph.run_fastq_streaming(path).unwrap();
    std::fs::remove_dir_all(ph.config().work_dir()).unwrap();
    out
}

#[test]
fn graph_is_identical_with_and_without_simd() {
    let _guard = dna::simd::override_guard();
    let reads = corpus();
    let path = std::env::temp_dir().join(format!("parahash-simd-{}.fastq", std::process::id()));
    write_fastq(&path, &reads);

    dna::simd::set_force_scalar_override(Some(true));
    let scalar = run_streaming("parahash-simd-scalar", 4, &path);
    dna::simd::set_force_scalar_override(None);

    assert!(scalar.graph.distinct_vertices() > 100, "corpus too small to be meaningful");
    for threads in [1usize, 4, 8] {
        dna::simd::set_force_scalar_override(Some(false));
        let simd = run_streaming(&format!("parahash-simd-t{threads}"), threads, &path);
        dna::simd::set_force_scalar_override(None);
        assert_eq!(
            simd.graph, scalar.graph,
            "SIMD run at {threads} threads diverged from forced-scalar"
        );
        let stats = simd.report.step1.step1_stats.expect("step1 reports stats");
        let expected_bases: u64 = reads.iter().map(|r| r.len() as u64).sum();
        assert_eq!(stats.bases, expected_bases, "ingest base tally (threads={threads})");
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn gzip_framings_match_plain_input() {
    let _guard = dna::simd::override_guard();
    let reads = corpus();
    let pid = std::process::id();
    let plain = std::env::temp_dir().join(format!("parahash-simd-gz-{pid}.fastq"));
    write_fastq(&plain, &reads);
    let text = std::fs::read(&plain).unwrap();

    let gz = std::env::temp_dir().join(format!("parahash-simd-gz-{pid}.fastq.gz"));
    std::fs::write(&gz, dna::gzip::compress_stored(&text)).unwrap();
    let bgzf = std::env::temp_dir().join(format!("parahash-simd-bgzf-{pid}.fastq.gz"));
    std::fs::write(&bgzf, dna::gzip::compress_bgzf(&text)).unwrap();

    dna::simd::set_force_scalar_override(Some(false));
    let reference = run_streaming("parahash-simd-plain", 4, &plain);
    let via_gz = run_streaming("parahash-simd-gzip", 4, &gz);
    let via_bgzf = run_streaming("parahash-simd-bgzf", 4, &bgzf);
    // Gzip must also parse on the sequential fallback path: the scalar
    // escape hatch may not change which inputs are accepted.
    dna::simd::set_force_scalar_override(Some(true));
    let scalar_gz = run_streaming("parahash-simd-gzip-scalar", 4, &gz);
    dna::simd::set_force_scalar_override(None);

    assert_eq!(via_gz.graph, reference.graph, "single-member gzip diverged");
    assert_eq!(via_bgzf.graph, reference.graph, "multi-member BGZF diverged");
    assert_eq!(scalar_gz.graph, reference.graph, "forced-scalar gzip diverged");
    for p in [plain, gz, bgzf] {
        std::fs::remove_file(p).unwrap();
    }
}
