//! SIMD/scalar equivalence at the system level: every vectorized kernel
//! (word-parallel packing, single-word minimizer scan, prefetched table
//! probes, chunked parallel FASTQ ingest) must leave the final graph
//! **byte-identical** to the forced-scalar fallbacks, across thread
//! counts and input framings (plain, gzip, BGZF). The acceptance gate of
//! the SIMD work: `PARAHASH_FORCE_SCALAR=1` is a pure performance knob.

use datagen::{GenomeSpec, Sequencer, SequencingSpec};
use dna::SeqRead;
use parahash::{ParaHash, ParaHashConfig, RunOutcome};
use pipeline::IoMode;

const K: usize = 15;
const P: usize = 7;
const PARTS: usize = 12;

fn corpus() -> Vec<SeqRead> {
    let genome = GenomeSpec::new(3_000).seed(1117).repeat_fraction(0.3).generate();
    let spec = SequencingSpec {
        read_len: 80,
        coverage: 5.0,
        lambda: 1.0,
        reverse_strand_prob: 0.5,
        seed: 1117,
    };
    Sequencer::new(spec).sequence(&genome)
}

fn config(dir: &str, threads: usize) -> ParaHashConfig {
    let cfg = ParaHashConfig::builder()
        .k(K)
        .p(P)
        .partitions(PARTS)
        .cpu_threads(threads)
        .read_batch_bytes(2048)
        .io_mode(IoMode::Unthrottled)
        .work_dir(std::env::temp_dir().join(dir))
        .build()
        .unwrap();
    let _ = std::fs::remove_dir_all(cfg.work_dir());
    cfg
}

fn write_fastq(path: &std::path::Path, reads: &[SeqRead]) {
    let mut w = dna::FastqWriter::new(std::fs::File::create(path).unwrap());
    for r in reads {
        w.write_record(r).unwrap();
    }
    w.into_inner().unwrap();
}

fn run_streaming(dir: &str, threads: usize, path: &std::path::Path) -> RunOutcome {
    let ph = ParaHash::new(config(dir, threads)).unwrap();
    let out = ph.run_fastq_streaming(path).unwrap();
    std::fs::remove_dir_all(ph.config().work_dir()).unwrap();
    out
}

/// The boundary-fuzz corpus: the random read set plus low-complexity
/// reads (homopolymers, dinucleotide and triplet repeats) whose rolling
/// forward/reverse words are maximally self-similar — the inputs most
/// likely to expose an off-by-one in the k≤32 replay fast path — and
/// reads of exactly k and k±1 bases at the widest boundary.
fn boundary_corpus() -> Vec<SeqRead> {
    let mut reads = corpus();
    for (i, base) in ["A", "C", "G", "T"].iter().enumerate() {
        reads.push(SeqRead::from_ascii(format!("homo{i}"), base.repeat(70).as_bytes()));
    }
    reads.push(SeqRead::from_ascii("at", "AT".repeat(40).as_bytes()));
    reads.push(SeqRead::from_ascii("ta", "TA".repeat(40).as_bytes()));
    reads.push(SeqRead::from_ascii("gc", "GC".repeat(40).as_bytes()));
    reads.push(SeqRead::from_ascii("acg", "ACG".repeat(25).as_bytes()));
    let cycle = b"ACGT".repeat(9);
    for len in [32usize, 33, 34] {
        reads.push(SeqRead::from_ascii(format!("len{len}"), &cycle[..len]));
    }
    reads
}

/// Full run that persists subgraphs; returns the final graph and every
/// partition subgraph file's raw bytes.
fn run_with_subgraphs(
    dir: &str,
    k: usize,
    p: usize,
    threads: usize,
    reads: &[SeqRead],
) -> (hashgraph::DeBruijnGraph, Vec<Vec<u8>>) {
    let cfg = ParaHashConfig::builder()
        .k(k)
        .p(p)
        .partitions(PARTS)
        .cpu_threads(threads)
        .read_batch_bytes(2048)
        .io_mode(IoMode::Unthrottled)
        .write_subgraphs(true)
        .work_dir(std::env::temp_dir().join(dir))
        .build()
        .unwrap();
    let _ = std::fs::remove_dir_all(cfg.work_dir());
    let work = cfg.work_dir().to_path_buf();
    let ph = ParaHash::new(cfg).unwrap();
    let out = ph.run(reads).unwrap();
    let subs = (0..PARTS)
        .map(|i| std::fs::read(work.join("subgraphs").join(format!("sub-{i:05}.dbg"))).unwrap())
        .collect();
    std::fs::remove_dir_all(&work).unwrap();
    (out.graph, subs)
}

/// Differential fuzz across the narrow-word boundary: k = 31 (tail
/// slack), k = 32 (the single-u64 fast path completely full) and k = 33
/// (first width that must take the multi-word cursor), crossed with
/// minimizer lengths at the same boundary. The fast path must leave the
/// graph *and the persisted subgraph bytes* identical to
/// `PARAHASH_FORCE_SCALAR=1`; k = 32 is additionally swept over 1/4/8
/// threads.
#[test]
fn replay_fast_path_matches_scalar_at_k_boundaries() {
    let _guard = dna::simd::override_guard();
    let reads = boundary_corpus();
    for (k, p) in [(31, 31), (32, 31), (32, 32), (33, 31), (33, 32), (33, 33)] {
        dna::simd::set_force_scalar_override(Some(true));
        let (scalar_graph, scalar_subs) =
            run_with_subgraphs(&format!("parahash-kp-scalar-{k}-{p}"), k, p, 4, &reads);
        assert!(scalar_graph.distinct_vertices() > 100, "corpus too small at k={k}");
        dna::simd::set_force_scalar_override(Some(false));
        let threads_list: &[usize] = if k == 32 && p == 32 { &[1, 4, 8] } else { &[4] };
        for &threads in threads_list {
            let (graph, subs) = run_with_subgraphs(
                &format!("parahash-kp-fast-{k}-{p}-t{threads}"),
                k,
                p,
                threads,
                &reads,
            );
            assert_eq!(graph, scalar_graph, "graph diverged at k={k} p={p} threads={threads}");
            assert_eq!(
                subs, scalar_subs,
                "subgraph bytes diverged at k={k} p={p} threads={threads}"
            );
        }
        dna::simd::set_force_scalar_override(None);
    }
}

#[test]
fn graph_is_identical_with_and_without_simd() {
    let _guard = dna::simd::override_guard();
    let reads = corpus();
    let path = std::env::temp_dir().join(format!("parahash-simd-{}.fastq", std::process::id()));
    write_fastq(&path, &reads);

    dna::simd::set_force_scalar_override(Some(true));
    let scalar = run_streaming("parahash-simd-scalar", 4, &path);
    dna::simd::set_force_scalar_override(None);

    assert!(scalar.graph.distinct_vertices() > 100, "corpus too small to be meaningful");
    for threads in [1usize, 4, 8] {
        dna::simd::set_force_scalar_override(Some(false));
        let simd = run_streaming(&format!("parahash-simd-t{threads}"), threads, &path);
        dna::simd::set_force_scalar_override(None);
        assert_eq!(
            simd.graph, scalar.graph,
            "SIMD run at {threads} threads diverged from forced-scalar"
        );
        let stats = simd.report.step1.step1_stats.expect("step1 reports stats");
        let expected_bases: u64 = reads.iter().map(|r| r.len() as u64).sum();
        assert_eq!(stats.bases, expected_bases, "ingest base tally (threads={threads})");
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn gzip_framings_match_plain_input() {
    let _guard = dna::simd::override_guard();
    let reads = corpus();
    let pid = std::process::id();
    let plain = std::env::temp_dir().join(format!("parahash-simd-gz-{pid}.fastq"));
    write_fastq(&plain, &reads);
    let text = std::fs::read(&plain).unwrap();

    let gz = std::env::temp_dir().join(format!("parahash-simd-gz-{pid}.fastq.gz"));
    std::fs::write(&gz, dna::gzip::compress_stored(&text)).unwrap();
    let bgzf = std::env::temp_dir().join(format!("parahash-simd-bgzf-{pid}.fastq.gz"));
    std::fs::write(&bgzf, dna::gzip::compress_bgzf(&text)).unwrap();

    dna::simd::set_force_scalar_override(Some(false));
    let reference = run_streaming("parahash-simd-plain", 4, &plain);
    let via_gz = run_streaming("parahash-simd-gzip", 4, &gz);
    let via_bgzf = run_streaming("parahash-simd-bgzf", 4, &bgzf);
    // Gzip must also parse on the sequential fallback path: the scalar
    // escape hatch may not change which inputs are accepted.
    dna::simd::set_force_scalar_override(Some(true));
    let scalar_gz = run_streaming("parahash-simd-gzip-scalar", 4, &gz);
    dna::simd::set_force_scalar_override(None);

    assert_eq!(via_gz.graph, reference.graph, "single-member gzip diverged");
    assert_eq!(via_bgzf.graph, reference.graph, "multi-member BGZF diverged");
    assert_eq!(scalar_gz.graph, reference.graph, "forced-scalar gzip diverged");
    for p in [plain, gz, bgzf] {
        std::fs::remove_file(p).unwrap();
    }
}
