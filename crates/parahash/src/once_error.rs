//! A lock-free "first error wins" funnel for parallel kernels.
//!
//! Step 1 and Step 2 fan work out across threads; when any work item
//! fails, we want to remember *one* error (the first) and let the
//! remaining items finish or bail out cheaply. The obvious
//! `Mutex<Option<E>>` funnel makes every failure path — and every
//! "has anything failed yet?" poll — take a lock on a cache line
//! shared by all workers. [`OnceError`] replaces it with two atomic
//! flags:
//!
//! * `armed` — set by the first thread to win an `AtomicBool::swap`;
//!   that thread alone gains the right to write the error cell;
//! * `done` — published with `Release` ordering once the cell is
//!   written, so readers that observe `done == true` via `Acquire`
//!   also observe the completed write.
//!
//! The hot path for a *successful* worker is a single relaxed load
//! (via [`OnceError::is_set`] early-exit checks) — no lock, no RMW.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, Ordering};

/// A write-once error slot shared by many threads.
///
/// The first call to [`set`](OnceError::set) stores its error; later
/// calls drop theirs. [`into_inner`](OnceError::into_inner) extracts
/// the stored error once all workers have joined (exclusive ownership
/// guarantees that — it takes `self` by value).
#[derive(Debug, Default)]
pub struct OnceError<E> {
    /// First-wins claim flag: the thread whose `swap` returns `false`
    /// owns the cell.
    armed: AtomicBool,
    /// Publication flag: `true` only after the cell write completed.
    done: AtomicBool,
    cell: UnsafeCell<Option<E>>,
}

// SAFETY: the cell is written by exactly one thread (the `swap`
// winner) and only read through `into_inner`, which requires
// exclusive ownership — by then every worker thread has joined and
// the `Release`/`Acquire` pair on `done` (or the join itself) orders
// the write before the read. `E: Send` suffices; no `&E` is ever
// handed out across threads.
unsafe impl<E: Send> Sync for OnceError<E> {}

impl<E> OnceError<E> {
    /// An empty slot.
    pub fn new() -> OnceError<E> {
        OnceError {
            armed: AtomicBool::new(false),
            done: AtomicBool::new(false),
            cell: UnsafeCell::new(None),
        }
    }

    /// Records `err` if no error has been recorded yet; otherwise
    /// drops it. Lock-free: losers pay one atomic `swap`, and callers
    /// that already observed [`is_set`](OnceError::is_set) can skip
    /// even that.
    pub fn set(&self, err: E) {
        // Cheap pre-check: once armed, nobody else can win.
        if self.armed.load(Ordering::Relaxed) {
            return;
        }
        if self.armed.swap(true, Ordering::AcqRel) {
            return; // lost the race
        }
        // SAFETY: we won the swap; no other thread writes the cell,
        // and no thread reads it until `done` is observed or the
        // value is extracted under exclusive ownership.
        unsafe { *self.cell.get() = Some(err) };
        self.done.store(true, Ordering::Release);
    }

    /// Whether an error has been recorded *and published*. Suitable
    /// as a cooperative early-exit check inside parallel kernels.
    pub fn is_set(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Extracts the stored error, if any. Taking `self` by value
    /// proves all sharing has ended.
    pub fn into_inner(self) -> Option<E> {
        self.cell.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn empty_slot_yields_none() {
        let e: OnceError<String> = OnceError::new();
        assert!(!e.is_set());
        assert_eq!(e.into_inner(), None);
    }

    #[test]
    fn first_error_wins_serially() {
        let e = OnceError::new();
        e.set("first");
        e.set("second");
        assert!(e.is_set());
        assert_eq!(e.into_inner(), Some("first"));
    }

    #[test]
    fn exactly_one_error_survives_a_race() {
        for _ in 0..50 {
            let slot: Arc<OnceError<usize>> = Arc::new(OnceError::new());
            let barrier = Arc::new(std::sync::Barrier::new(8));
            let handles: Vec<_> = (0..8)
                .map(|i| {
                    let slot = Arc::clone(&slot);
                    let barrier = Arc::clone(&barrier);
                    std::thread::spawn(move || {
                        barrier.wait();
                        slot.set(i);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert!(slot.is_set());
            let v = Arc::try_unwrap(slot).unwrap().into_inner();
            assert!(matches!(v, Some(0..=7)));
        }
    }

    #[test]
    fn is_set_visible_across_threads() {
        let slot: Arc<OnceError<&'static str>> = Arc::new(OnceError::new());
        let writer = {
            let slot = Arc::clone(&slot);
            std::thread::spawn(move || slot.set("boom"))
        };
        writer.join().unwrap();
        assert!(slot.is_set());
    }

    #[test]
    fn default_is_empty() {
        let e: OnceError<u8> = OnceError::default();
        assert!(!e.is_set());
        assert_eq!(e.into_inner(), None);
    }
}
