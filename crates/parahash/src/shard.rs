//! Multi-process Step-2 sharding: the parent/worker drivers behind
//! [`workers(N)`](crate::ParaHashConfigBuilder::workers).
//!
//! The parent runs Step 1 as usual and seals the partition directory;
//! then, instead of building subgraphs in-process, it binds a Unix
//! socket in the work directory, spawns `N` copies of its own
//! executable (the `tests/crash_recovery.rs` self-exec pattern), and
//! leases partitions to them one at a time in LPT (largest-first)
//! order over the [`pipeline::shard`] wire protocol. Each worker builds
//! its leased partition with [`build_and_commit_partition`] — read,
//! budget-admit (sub-partitioning out of core when projected over
//! budget), hash-construct, atomically commit `sub-<i>.dbg` — and
//! journals into its own `worker-<id>/run.journal`. The **committed
//! subgraph file is the result channel**: the parent re-reads and
//! CRC-verifies every file a worker reports before trusting it, then
//! absorbs them all into the final graph. Byte-identity with the
//! in-process build therefore holds by construction — both paths
//! funnel through the same canonical-order [`crate::encode_subgraph`].
//!
//! Failure handling: a worker that dies mid-lease drops its socket; the
//! parent requeues its partitions (bounded by the board's attempt cap,
//! so a partition that *crashes* builders cannot re-lease forever).
//! Partitions still unbuilt after every worker exits — all workers
//! died, or a lease exhausted its attempts — are built in-process by
//! the parent as a fallback; only when that too fails does the run
//! abort (strict) or quarantine (non-strict).
//!
//! Worker processes are CPU-only and run with unthrottled I/O: the
//! sharded path exists for real multi-process throughput (separate
//! address spaces, separate page caches, overlapped fsyncs), not for
//! the simulated-device regimes, which remain in-process features.

use std::collections::BTreeSet;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use hashgraph::DeBruijnGraph;
use hetsim::DeviceKind;
use msp::{PartitionManifest, QuarantinedPartition};
use parking_lot::Mutex;
use pipeline::shard::{read_frame, write_frame, LeaseBoard, WireMsg};
use pipeline::{IoMode, PipelineReport, ThrottledIo};

use crate::journal::{Fingerprint, JournalEvent, RunJournal};
use crate::step2::{build_and_commit_partition, decode_subgraph_checked};
use crate::{ParaHashConfig, ParaHashError, Result, StepReport};

/// Environment variable carrying the parent's socket path into workers.
pub(crate) const ENV_SOCKET: &str = "PARAHASH_SHARD_SOCKET";
/// Environment variable carrying the worker's parent-assigned id.
pub(crate) const ENV_WORKER: &str = "PARAHASH_SHARD_WORKER";
/// Fault-injection hook for the worker-death tests: `"<worker>@<nth>"`
/// makes worker `<worker>` abort immediately before building its
/// `<nth>` assignment (1-based). Inherited by workers from the parent's
/// environment, like the failpoint variables.
pub(crate) const ENV_KILL: &str = "PARAHASH_SHARD_KILL";

/// How many times one partition may be leased before it is given up on
/// (worker crashes and polite failures both consume attempts).
const MAX_LEASE_ATTEMPTS: usize = 2;

/// Socket filename inside the work directory.
const SOCKET_FILE: &str = "shard.sock";

fn shard_err(msg: impl Into<String>) -> ParaHashError {
    ParaHashError::Shard(msg.into())
}

// ---------------------------------------------------------------------
// Config blob: how the parent's build configuration crosses the wire.
// ---------------------------------------------------------------------

/// Serialises the subset of the configuration a worker needs, as
/// `key value` lines. Floats travel as `f64::to_bits` hex so the worker
/// reconstructs bit-identical sizing parameters (a decimal round-trip
/// could move a table capacity by one and break byte-identity of the
/// resize accounting). `work-dir` is last and consumes the rest of its
/// line — paths may contain spaces.
fn config_blob(config: &ParaHashConfig) -> String {
    let threads = config
        .devices()
        .iter()
        .find(|d| d.kind() == DeviceKind::Cpu)
        .map_or(1, |d| d.parallelism());
    let token = if config.run_token.is_empty() { "-" } else { &config.run_token };
    format!(
        "k {}\np {}\npartitions {}\nlambda {:016x}\nalpha {:016x}\n\
         table-memory-budget {}\nout-of-core {}\nthreads {}\ndigest {:016x}\n\
         run-token {}\nwork-dir {}",
        config.k,
        config.p,
        config.partitions,
        config.sizing.lambda.to_bits(),
        config.sizing.alpha.to_bits(),
        config.table_memory_budget,
        config.out_of_core as u8,
        threads,
        config.input_digest,
        token,
        config.work_dir.display(),
    )
}

/// Parses [`config_blob`] back into a worker-side configuration: same
/// build parameters, but CPU-only, strict (every failure must surface
/// as a wire `failed` message — quarantine policy belongs to the
/// parent), and with subgraph persistence forced on (the committed file
/// is the result channel).
fn config_from_blob(blob: &str) -> Result<(ParaHashConfig, Fingerprint)> {
    let mut k = None;
    let mut p = None;
    let mut partitions = None;
    let mut lambda = None;
    let mut alpha = None;
    let mut budget = None;
    let mut out_of_core = None;
    let mut threads = None;
    let mut digest = None;
    let mut token = None;
    let mut work_dir = None;
    for line in blob.lines() {
        let (key, value) = line
            .split_once(' ')
            .ok_or_else(|| shard_err(format!("config blob line without a value: `{line}`")))?;
        let int = |what: &str| -> Result<u64> {
            value.parse().map_err(|e| shard_err(format!("config blob: bad {what}: {e}")))
        };
        let bits = |what: &str| -> Result<f64> {
            u64::from_str_radix(value, 16)
                .map(f64::from_bits)
                .map_err(|e| shard_err(format!("config blob: bad {what}: {e}")))
        };
        match key {
            "k" => k = Some(int("k")? as usize),
            "p" => p = Some(int("p")? as usize),
            "partitions" => partitions = Some(int("partitions")? as usize),
            "lambda" => lambda = Some(bits("lambda")?),
            "alpha" => alpha = Some(bits("alpha")?),
            "table-memory-budget" => budget = Some(int("table-memory-budget")?),
            "out-of-core" => out_of_core = Some(int("out-of-core")? != 0),
            "threads" => threads = Some(int("threads")? as usize),
            "digest" => {
                digest = Some(
                    u64::from_str_radix(value, 16)
                        .map_err(|e| shard_err(format!("config blob: bad digest: {e}")))?,
                )
            }
            "run-token" => token = Some(if value == "-" { String::new() } else { value.into() }),
            "work-dir" => work_dir = Some(PathBuf::from(value)),
            other => return Err(shard_err(format!("config blob: unknown key `{other}`"))),
        }
    }
    let missing = |what: &str| shard_err(format!("config blob is missing `{what}`"));
    let (k, p, partitions) = (
        k.ok_or_else(|| missing("k"))?,
        p.ok_or_else(|| missing("p"))?,
        partitions.ok_or_else(|| missing("partitions"))?,
    );
    let mut config = ParaHashConfig::builder()
        .k(k)
        .p(p)
        .partitions(partitions)
        .sizing(hashgraph::SizingParams {
            lambda: lambda.ok_or_else(|| missing("lambda"))?,
            alpha: alpha.ok_or_else(|| missing("alpha"))?,
        })
        .table_memory_budget(budget.ok_or_else(|| missing("table-memory-budget"))?)
        .out_of_core(out_of_core.ok_or_else(|| missing("out-of-core"))?)
        .cpu_threads(threads.ok_or_else(|| missing("threads"))?)
        .work_dir(work_dir.ok_or_else(|| missing("work-dir"))?)
        .write_subgraphs(true)
        .strict(true)
        .build()?;
    config.run_token = token.ok_or_else(|| missing("run-token"))?;
    let fingerprint =
        Fingerprint { k, p, partitions, input_digest: digest.ok_or_else(|| missing("digest"))? };
    config.input_digest = fingerprint.input_digest;
    Ok((config, fingerprint))
}

// ---------------------------------------------------------------------
// Worker side.
// ---------------------------------------------------------------------

/// Routes a process into the shard-worker loop when the parent's
/// environment marks it as one. **Call this first in `main`** (or in
/// the dedicated worker-entry test of a test binary): a production
/// binary spawned as a worker then serves its leases and exits instead
/// of running its own workload.
///
/// Returns `Ok(false)` immediately in an ordinary process (the
/// variables are absent), `Ok(true)` after a completed worker run.
///
/// # Errors
///
/// Connection, protocol, or configuration failures inside the worker
/// loop. Build failures of individual partitions are *not* errors here
/// — they are reported to the parent as `failed` messages and retried
/// or quarantined there.
pub fn worker_from_env() -> Result<bool> {
    let Ok(socket) = std::env::var(ENV_SOCKET) else { return Ok(false) };
    let Ok(worker) = std::env::var(ENV_WORKER) else { return Ok(false) };
    let worker: usize = worker
        .parse()
        .map_err(|e| shard_err(format!("{ENV_WORKER}=`{worker}` is not a worker id: {e}")))?;
    run_worker(Path::new(&socket), worker)?;
    Ok(true)
}

/// Parses [`ENV_KILL`] for this worker: `Some(nth)` when this worker
/// must abort before building its `nth` assignment.
fn kill_before(worker: usize) -> Option<usize> {
    let spec = std::env::var(ENV_KILL).ok()?;
    let (w, nth) = spec.split_once('@')?;
    if w.parse::<usize>().ok()? != worker {
        return None;
    }
    nth.parse().ok()
}

fn send(stream: &mut UnixStream, msg: &WireMsg) -> Result<()> {
    write_frame(stream, &msg.encode()).map_err(ParaHashError::Io)
}

/// The worker loop: hello, receive the config, then claim-build-report
/// until the parent says `finished`.
fn run_worker(socket: &Path, worker: usize) -> Result<()> {
    let mut stream = UnixStream::connect(socket).map_err(ParaHashError::Io)?;
    send(&mut stream, &WireMsg::Hello(worker))?;
    let Some(frame) = read_frame(&mut stream).map_err(ParaHashError::Io)? else {
        return Ok(()); // parent went away before configuring us
    };
    let WireMsg::Config(blob) = WireMsg::decode(&frame).map_err(ParaHashError::Io)? else {
        return Err(shard_err("parent's first message was not `config`"));
    };
    let (config, fingerprint) = config_from_blob(&blob)?;
    let manifest = PartitionManifest::load(config.work_dir.join("superkmers"))?;
    // The worker's own journal, in its own subdirectory: `sub-split` and
    // `subgraph-committed` records for the leases it built, replayable
    // for post-mortems without racing the parent's `run.journal`.
    let journal =
        RunJournal::create(&config.work_dir.join(format!("worker-{worker}")), fingerprint)?;
    let io = ThrottledIo::new(IoMode::Unthrottled);
    let kill = kill_before(worker);
    let mut assigned = 0usize;
    loop {
        send(&mut stream, &WireMsg::Claim(worker))?;
        let Some(frame) = read_frame(&mut stream).map_err(ParaHashError::Io)? else {
            return Ok(()); // parent died; nothing useful left to do
        };
        match WireMsg::decode(&frame).map_err(ParaHashError::Io)? {
            WireMsg::Assign(p) => {
                assigned += 1;
                if kill == Some(assigned) {
                    // Die exactly as a crashed worker would: no unwind,
                    // no cleanup, the lease left dangling.
                    std::process::abort();
                }
                let built = build_and_commit_partition(
                    &config,
                    p,
                    &manifest.partition_path(p),
                    manifest.stats()[p].kmers,
                    &io,
                    Some(&journal),
                );
                let reply = match built {
                    Ok(out) => WireMsg::Result(
                        p,
                        format!("ok {} {} {}", out.resizes, out.peak_table_bytes, out.fanout),
                    ),
                    Err(e) => WireMsg::Failed(p, e.to_string().replace(['\n', '\r'], " ")),
                };
                send(&mut stream, &reply)?;
            }
            WireMsg::Finished => return Ok(()),
            other => return Err(shard_err(format!("unexpected message from parent: {other:?}"))),
        }
    }
}

// ---------------------------------------------------------------------
// Parent side.
// ---------------------------------------------------------------------

/// What the connection handlers accumulate across workers.
#[derive(Default)]
struct ShardStats {
    resizes: usize,
    peak_table_bytes: u64,
    sub_splits: Vec<(usize, usize)>,
    built: BTreeSet<usize>,
}

/// Step 2 as a multi-process shard: spawn
/// [`workers`](crate::ParaHashConfigBuilder::workers) child processes,
/// lease them partitions largest-first, verify and absorb their
/// committed subgraphs. Drop-in replacement for
/// [`run_step2_with`](crate::step2::run_step2_with) on the two-phase
/// path — same signature, same journal records in the parent's
/// `run.journal`, byte-identical subgraph files and graph.
///
/// # Errors
///
/// Socket/spawn failures, a partition that exhausted its lease attempts
/// *and* the in-process fallback (strict mode), or any error of the
/// fallback builds.
pub(crate) fn run_step2_sharded(
    config: &ParaHashConfig,
    manifest: &PartitionManifest,
    io: &ThrottledIo,
    journal: Option<&RunJournal>,
    skip: &BTreeSet<usize>,
) -> Result<(DeBruijnGraph, StepReport)> {
    debug_assert!(config.workers > 0);
    let started = Instant::now();
    let n = manifest.num_partitions();
    let sub_dir = config.work_dir.join("subgraphs");
    std::fs::create_dir_all(&sub_dir)?;

    // LPT dispatch order, as in the in-process scheduler: the biggest
    // partitions start first so the tail stays short. Ties break to the
    // lower index for deterministic assignment logs.
    let mut order: Vec<usize> = (0..n).filter(|i| !skip.contains(i)).collect();
    order.sort_by(|&a, &b| {
        manifest.stats()[b].bytes.cmp(&manifest.stats()[a].bytes).then(a.cmp(&b))
    });

    let socket_path = config.work_dir.join(SOCKET_FILE);
    let _ = std::fs::remove_file(&socket_path);
    let listener = UnixListener::bind(&socket_path).map_err(|e| {
        shard_err(format!("binding worker socket {}: {e}", socket_path.display()))
    })?;

    let exe = std::env::current_exe().map_err(ParaHashError::Io)?;
    let mut children = Vec::with_capacity(config.workers);
    for w in 0..config.workers {
        let child = std::process::Command::new(&exe)
            .args(&config.worker_args)
            .env(ENV_SOCKET, &socket_path)
            .env(ENV_WORKER, w.to_string())
            .spawn()
            .map_err(|e| shard_err(format!("spawning worker {w}: {e}")))?;
        children.push(child);
    }

    let board = Mutex::new(LeaseBoard::new(order, n, MAX_LEASE_ATTEMPTS));
    let stats = Mutex::new(ShardStats::default());
    let blob = config_blob(config);
    let shutdown = AtomicBool::new(false);
    let mut handler_faults: Vec<ParaHashError> = Vec::new();

    std::thread::scope(|s| {
        let accept = s.spawn(|| {
            let mut handlers = Vec::new();
            while let Ok((stream, _)) = listener.accept() {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                handlers.push(s.spawn(|| {
                    serve_worker(stream, &board, &stats, &blob, &sub_dir, journal)
                }));
            }
            handlers.into_iter().filter_map(|h| h.join().ok().and_then(|r| r.err())).collect()
        });
        // Workers exit when the board drains (`finished`) or they die;
        // either way every child terminates, and only then is it safe
        // to stop serving the socket.
        for child in &mut children {
            let _ = child.wait();
        }
        shutdown.store(true, Ordering::SeqCst);
        let _ = UnixStream::connect(&socket_path); // unblock accept()
        handler_faults = accept.join().unwrap_or_default();
    });
    let _ = std::fs::remove_file(&socket_path);

    // A handler fault is a *parent-side* failure (journal append,
    // protocol corruption) — the affected worker's leases were requeued
    // on its EOF, but a journaling failure must abort like in-process.
    if let Some(e) = handler_faults.into_iter().next() {
        if config.strict {
            let _ = std::fs::remove_dir_all(&sub_dir);
            return Err(e);
        }
    }

    let mut board = board.into_inner();
    let mut stats = stats.into_inner();
    let mut quarantined: Vec<QuarantinedPartition> = Vec::new();

    // Leases that burned every attempt: strict runs abort, non-strict
    // runs set the partition aside exactly like an in-process read
    // failure would.
    for x in board.exhausted() {
        if config.strict {
            let _ = std::fs::remove_dir_all(&sub_dir);
            return Err(shard_err(format!(
                "partition {} failed {} worker attempt(s): {}",
                x.partition, x.attempts, x.reason
            )));
        }
        quarantined.push(QuarantinedPartition {
            index: x.partition,
            reason: format!("{} (after {} worker attempts)", x.reason, x.attempts),
        });
    }

    // Orphans — partitions still pending after every worker exited
    // (workers all died, or all drew `finished` while a failure was
    // requeueing) — fall back to in-process builds by the parent.
    let mut orphans = Vec::new();
    while let Some(p) = board.claim(usize::MAX) {
        orphans.push(p);
    }
    if !orphans.is_empty() {
        let mut local = config.clone();
        local.workers = 0;
        local.strict = true;
        local.write_subgraphs = true;
        for p in orphans {
            match build_and_commit_partition(
                &local,
                p,
                &manifest.partition_path(p),
                manifest.stats()[p].kmers,
                io,
                journal,
            ) {
                Ok(out) => {
                    stats.resizes += out.resizes;
                    stats.peak_table_bytes = stats.peak_table_bytes.max(out.peak_table_bytes);
                    if out.fanout >= 2 {
                        stats.sub_splits.push((p, out.fanout));
                    }
                    stats.built.insert(p);
                }
                Err(e) if config.strict => {
                    let _ = std::fs::remove_dir_all(&sub_dir);
                    return Err(e);
                }
                Err(e) => {
                    quarantined
                        .push(QuarantinedPartition { index: p, reason: e.to_string() });
                }
            }
        }
    }

    // Absorb what this step built (resume-skipped partitions are
    // absorbed by the driver, as on the in-process path). Files were
    // already verified when the worker reported them; fallback builds
    // are trusted like in-process commits.
    let mut graph = DeBruijnGraph::new(config.k);
    let mut peak_partition = 0u64;
    for &p in &stats.built {
        let bytes = std::fs::read(sub_dir.join(format!("sub-{p:05}.dbg")))?;
        graph.absorb(decode_subgraph_checked(&bytes, Some(p))?);
        peak_partition = peak_partition.max(manifest.stats()[p].bytes);
    }

    stats.sub_splits.sort_unstable();
    stats.sub_splits.dedup();
    if let Some(journal) = journal {
        for q in &quarantined {
            journal.append(&JournalEvent::Quarantined(q.index, q.reason.clone()))?;
        }
    }
    if !quarantined.is_empty() || !stats.sub_splits.is_empty() {
        let mut marked = manifest.clone();
        for q in &quarantined {
            marked.quarantine(q.index, q.reason.clone());
        }
        for &(i, fanout) in &stats.sub_splits {
            marked.set_sub_split(i, fanout);
        }
        marked.save()?;
    }
    if !config.write_subgraphs {
        // The files were only ever the wire's result channel; the user
        // asked for none. (The resume skip-set is always empty in this
        // configuration, so nothing downstream reads them.)
        std::fs::remove_dir_all(&sub_dir)?;
    }

    let partitions_built = stats.built.len();
    let report = StepReport {
        step: 2,
        pipeline: PipelineReport {
            elapsed: started.elapsed(),
            input_time: Duration::ZERO,
            output_time: Duration::ZERO,
            shares: Vec::new(),
            partitions: partitions_built,
            spans: Vec::new(),
            cancelled: false,
        },
        // Device meters live in the worker processes; the parent's own
        // devices did no Step-2 work (fallback builds excepted, whose
        // compute is folded into `elapsed`).
        cpu_compute: Duration::ZERO,
        gpu_compute: Duration::ZERO,
        contention: None,
        step1_stats: None,
        resizes: stats.resizes,
        peak_partition_bytes: peak_partition,
        peak_table_bytes: stats.peak_table_bytes,
        peak_resident_store_bytes: 0,
        quarantined,
        sub_splits: stats.sub_splits,
        coproc: None,
    };
    Ok((graph, report))
}

/// One connection's server loop: configure the worker, lease it
/// partitions, verify what it reports back. EOF (clean or crash) frees
/// the worker's outstanding leases.
fn serve_worker(
    mut stream: UnixStream,
    board: &Mutex<LeaseBoard>,
    stats: &Mutex<ShardStats>,
    blob: &str,
    sub_dir: &Path,
    journal: Option<&RunJournal>,
) -> Result<()> {
    let Some(frame) = read_frame(&mut stream).map_err(ParaHashError::Io)? else {
        return Ok(()); // the shutdown dummy connection
    };
    let WireMsg::Hello(worker) = WireMsg::decode(&frame).map_err(ParaHashError::Io)? else {
        return Err(shard_err("worker's first message was not `hello`"));
    };
    send(&mut stream, &WireMsg::Config(blob.to_string()))?;
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(Some(frame)) => frame,
            // Clean exit and crash look the same from here: requeue
            // whatever the worker still held (crash) — a no-op after a
            // clean `finished` exit (it held nothing).
            Ok(None) | Err(_) => {
                board.lock().release_worker(worker);
                return Ok(());
            }
        };
        match WireMsg::decode(&frame).map_err(ParaHashError::Io)? {
            WireMsg::Claim(w) => {
                let leased = board.lock().claim(w);
                match leased {
                    Some(p) => {
                        // Journaled *before* the assignment goes out:
                        // after a parent crash, replay shows exactly
                        // which partitions were in flight.
                        if let Some(journal) = journal {
                            journal.append(&JournalEvent::WorkerLease(w, p))?;
                        }
                        send(&mut stream, &WireMsg::Assign(p))?;
                    }
                    None => send(&mut stream, &WireMsg::Finished)?,
                }
            }
            WireMsg::Result(p, detail) => {
                // Trust nothing: the committed file must exist and pass
                // its end-to-end checks before the lease completes.
                let verified = std::fs::read(sub_dir.join(format!("sub-{p:05}.dbg")))
                    .map_err(ParaHashError::Io)
                    .and_then(|bytes| decode_subgraph_checked(&bytes, Some(p)).map(|_| ()));
                match verified {
                    Ok(()) => {
                        let mut board = board.lock();
                        board.complete(p);
                        drop(board);
                        if let Some(journal) = journal {
                            journal.append(&JournalEvent::SubgraphCommitted(p))?;
                        }
                        let mut st = stats.lock();
                        st.built.insert(p);
                        let mut fields = detail.split_whitespace();
                        if fields.next() == Some("ok") {
                            if let (Some(r), Some(t), Some(f)) = (
                                fields.next().and_then(|v| v.parse::<usize>().ok()),
                                fields.next().and_then(|v| v.parse::<u64>().ok()),
                                fields.next().and_then(|v| v.parse::<usize>().ok()),
                            ) {
                                st.resizes += r;
                                st.peak_table_bytes = st.peak_table_bytes.max(t);
                                if f >= 2 {
                                    st.sub_splits.push((p, f));
                                }
                            }
                        }
                    }
                    Err(e) => {
                        board.lock().fail(
                            p,
                            &format!("worker {worker} reported success but the file fails: {e}"),
                        );
                    }
                }
            }
            WireMsg::Failed(p, detail) => {
                board.lock().fail(p, &detail);
            }
            other => {
                board.lock().release_worker(worker);
                return Err(shard_err(format!("unexpected message from worker: {other:?}")));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(dir: &str) -> ParaHashConfig {
        ParaHashConfig::builder()
            .k(9)
            .p(5)
            .partitions(8)
            .cpu_threads(3)
            .table_memory_budget(1 << 20)
            .out_of_core(true)
            .work_dir(std::env::temp_dir().join(dir))
            .build()
            .unwrap()
    }

    #[test]
    fn config_blob_roundtrips_bit_exact() {
        let cfg = config("parahash-shard-blob");
        let (back, fp) = config_from_blob(&config_blob(&cfg)).unwrap();
        assert_eq!(back.k, cfg.k);
        assert_eq!(back.p, cfg.p);
        assert_eq!(back.partitions, cfg.partitions);
        assert_eq!(back.sizing.lambda.to_bits(), cfg.sizing.lambda.to_bits());
        assert_eq!(back.sizing.alpha.to_bits(), cfg.sizing.alpha.to_bits());
        assert_eq!(back.table_memory_budget, cfg.table_memory_budget);
        assert_eq!(back.out_of_core, cfg.out_of_core);
        assert_eq!(back.work_dir, cfg.work_dir);
        assert_eq!(back.devices()[0].parallelism(), 3, "thread count crosses the wire");
        assert!(back.strict && back.write_subgraphs, "worker invariants forced on");
        assert_eq!(fp.k, 9);
        assert_eq!(fp.input_digest, 0, "no digest set on a bare config");
    }

    #[test]
    fn config_blob_rejects_damage() {
        let cfg = config("parahash-shard-blob-bad");
        let blob = config_blob(&cfg);
        assert!(config_from_blob(&blob.replace("k 9", "k nine")).is_err());
        assert!(config_from_blob(&blob.replace("digest", "digets")).is_err());
        let missing: String =
            blob.lines().filter(|l| !l.starts_with("alpha")).collect::<Vec<_>>().join("\n");
        assert!(config_from_blob(&missing).is_err(), "missing key must be rejected");
    }

    #[test]
    fn kill_spec_parses_and_scopes_to_the_worker() {
        // Uses a scoped fake env because the real one is process-global.
        std::env::set_var(ENV_KILL, "2@3");
        assert_eq!(kill_before(2), Some(3));
        assert_eq!(kill_before(1), None);
        std::env::set_var(ENV_KILL, "junk");
        assert_eq!(kill_before(2), None);
        std::env::remove_var(ENV_KILL);
        assert_eq!(kill_before(2), None);
    }
}
