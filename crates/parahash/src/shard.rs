//! Multi-process and multi-node Step-2 sharding: the parent/worker
//! drivers behind [`workers(N)`](crate::ParaHashConfigBuilder::workers)
//! and [`listen(addr)`](crate::ParaHashConfigBuilder::listen).
//!
//! The parent runs Step 1 as usual and seals the partition directory;
//! then, instead of building subgraphs in-process, it binds a listener
//! — a Unix socket in the work directory, or a TCP socket when remote
//! workers are expected — spawns `N` copies of its own executable (the
//! `tests/crash_recovery.rs` self-exec pattern), and leases partitions
//! to whoever connects, one at a time in LPT (largest-first) order over
//! the [`pipeline::shard`] wire protocol. Each worker builds its leased
//! partition with [`build_and_commit_partition`] — read, budget-admit
//! (sub-partitioning out of core when projected over budget),
//! hash-construct, atomically commit `sub-<i>.dbg` — and journals into
//! its own `worker-<id>/run.journal`.
//!
//! **Local (Unix) workers** share the parent's filesystem: the
//! committed subgraph file is the result channel, and the parent
//! re-reads and CRC-verifies every file a worker reports before
//! trusting it. **Remote (TCP) workers** get their partition payloads
//! shipped over the wire in the same CRC-framed format the partition
//! store uses on disk, build in a scratch directory, and stream the
//! committed subgraph bytes back; the parent commits those bytes
//! locally and then runs the *same* re-read verification seam. Either
//! way, byte-identity with the in-process build holds by construction —
//! every path funnels through the canonical-order
//! [`crate::encode_subgraph`].
//!
//! Failure handling: a worker that dies mid-lease drops its socket; one
//! that *hangs* mid-lease stops heartbeating and is evicted when the
//! parent's receive deadline lapses. Both requeue the worker's
//! partitions (bounded by the board's attempt cap, so a partition that
//! crashes builders cannot re-lease forever). Workers reconnect with
//! bounded exponential backoff and deterministically jittered pacing;
//! a reconnecting worker's journal is *reopened*, not truncated, so
//! its committed records survive for cluster-wide resume. Partitions
//! still unbuilt after the cluster drains — all workers died, or a
//! lease exhausted its attempts — are built in-process by the parent
//! as a fallback; only when that too fails does the run abort (strict)
//! or quarantine (non-strict).
//!
//! Worker processes are CPU-only and run with unthrottled I/O: the
//! sharded path exists for real multi-process throughput (separate
//! address spaces, separate page caches, overlapped fsyncs), not for
//! the simulated-device regimes, which remain in-process features.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hashgraph::DeBruijnGraph;
use hetsim::DeviceKind;
use msp::{PartitionManifest, QuarantinedPartition};
use parking_lot::Mutex;
use pipeline::shard::{
    connect_tcp, connect_unix, decode_blob, encode_blob, FrameSender, LeaseBoard, Recv,
    ShardListener, Transport, WireMsg, BLOB_TAG, MAX_FRAME, MAX_PAYLOAD_FRAME, PROTO_VERSION,
};
use pipeline::{failpoint, IoMode, PipelineReport, RetryPolicy, ThrottledIo};

use crate::journal::{Fingerprint, JournalEvent, RunJournal};
use crate::step2::{build_and_commit_partition, decode_subgraph_checked};
use crate::{ParaHashConfig, ParaHashError, Result, StepReport};

/// Environment variable carrying the parent's Unix socket path into
/// locally spawned workers.
pub(crate) const ENV_SOCKET: &str = "PARAHASH_SHARD_SOCKET";
/// Environment variable carrying the parent's TCP `host:port` into
/// locally spawned workers when the run listens on TCP. Remote workers
/// pass the address explicitly (`dbg worker --connect`).
pub(crate) const ENV_CONNECT: &str = "PARAHASH_SHARD_CONNECT";
/// Environment variable carrying the worker's parent-assigned id.
pub(crate) const ENV_WORKER: &str = "PARAHASH_SHARD_WORKER";
/// Fault-injection hook for the worker-death tests: `"<worker>@<nth>"`
/// makes worker `<worker>` abort immediately before building its
/// `<nth>` assignment (1-based). Inherited by workers from the parent's
/// environment, like the failpoint variables.
pub(crate) const ENV_KILL: &str = "PARAHASH_SHARD_KILL";
/// Fault-injection hook for the heartbeat-loss tests: `"<worker>@<nth>"`
/// arms the `shard.net.delay` failpoint on the worker's `<nth>`
/// assignment, so it silently holds the lease (no heartbeats) for
/// `PARAHASH_SHARD_DELAY_MS` before building — long enough, with a
/// short parent deadline, to be evicted as hung.
pub(crate) const ENV_STALL: &str = "PARAHASH_SHARD_STALL";
/// Setting this to `tcp` makes a `workers(N)` run without an explicit
/// [`listen`](crate::ParaHashConfigBuilder::listen) address bind a
/// loopback TCP listener instead of the Unix socket — the CI lever for
/// rerunning the shard suites over the remote transport.
pub(crate) const ENV_TRANSPORT: &str = "PARAHASH_SHARD_TRANSPORT";

/// How many times one partition may be leased before it is given up on
/// (worker crashes, evictions, and polite failures all consume
/// attempts).
const MAX_LEASE_ATTEMPTS: usize = 2;

/// Socket filename inside the work directory.
const SOCKET_FILE: &str = "shard.sock";

fn shard_err(msg: impl Into<String>) -> ParaHashError {
    ParaHashError::Shard(msg.into())
}

// ---------------------------------------------------------------------
// Tuning: every deadline and pacing knob, environment-overridable so
// the chaos suites can compress minutes of failure detection into
// milliseconds without touching production defaults.
// ---------------------------------------------------------------------

fn env_ms(var: &str, default: u64) -> Duration {
    Duration::from_millis(
        std::env::var(var).ok().and_then(|v| v.parse().ok()).unwrap_or(default),
    )
}

/// The shard protocol's timing knobs, shared by both sides.
#[derive(Debug, Clone)]
struct ShardTuning {
    /// Worker → parent liveness pulse period during builds
    /// (`PARAHASH_SHARD_HEARTBEAT_MS`, default 1000).
    heartbeat: Duration,
    /// Parent-side receive deadline between a worker's frames
    /// (`PARAHASH_SHARD_TIMEOUT_MS`, default 5× heartbeat): a worker
    /// silent this long is evicted as hung, not merely slow.
    idle_timeout: Duration,
    /// Deadline on every request-reply exchange — handshake, claim,
    /// payload transfer (`PARAHASH_SHARD_REQUEST_TIMEOUT_MS`,
    /// default 30 000).
    request_timeout: Duration,
    /// Worker reconnect pacing: attempts bound and exponential backoff
    /// (`PARAHASH_SHARD_RECONNECT_ATTEMPTS` default 5,
    /// `PARAHASH_SHARD_RECONNECT_MS` base default 100, capped at 2 s),
    /// jittered deterministically by worker id so a restarted cluster
    /// doesn't stampede.
    reconnect: RetryPolicy,
    /// How long a listen-only parent (no spawned children) waits for
    /// the first remote worker before degrading to the in-process
    /// fallback (`PARAHASH_SHARD_WAIT_MS`, default 30 000).
    wait_for_first: Duration,
}

impl ShardTuning {
    fn from_env() -> ShardTuning {
        let heartbeat = env_ms("PARAHASH_SHARD_HEARTBEAT_MS", 1000);
        let idle_timeout = match std::env::var("PARAHASH_SHARD_TIMEOUT_MS")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            Some(ms) => Duration::from_millis(ms),
            None => heartbeat.saturating_mul(5),
        };
        let attempts: u32 = std::env::var("PARAHASH_SHARD_RECONNECT_ATTEMPTS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(5);
        ShardTuning {
            heartbeat,
            idle_timeout,
            request_timeout: env_ms("PARAHASH_SHARD_REQUEST_TIMEOUT_MS", 30_000),
            reconnect: RetryPolicy::capped(
                attempts,
                env_ms("PARAHASH_SHARD_RECONNECT_MS", 100),
                Duration::from_secs(2),
            ),
            wait_for_first: env_ms("PARAHASH_SHARD_WAIT_MS", 30_000),
        }
    }
}

/// How long an armed `shard.net.delay` stall lasts (shared with the
/// wire layer's delayed-send semantics; `PARAHASH_SHARD_DELAY_MS`,
/// default 100).
fn stall_delay() -> Duration {
    env_ms("PARAHASH_SHARD_DELAY_MS", 100)
}

// ---------------------------------------------------------------------
// Config blob: how the parent's build configuration crosses the wire.
// ---------------------------------------------------------------------

/// Serialises the subset of the configuration a worker needs, as
/// `key value` lines. Floats travel as `f64::to_bits` hex so the worker
/// reconstructs bit-identical sizing parameters (a decimal round-trip
/// could move a table capacity by one and break byte-identity of the
/// resize accounting). `transfer` says how partition bytes move:
/// `fs` (shared filesystem — Unix workers) or `wire` (shipped in frames
/// — TCP workers, which must not assume the parent's paths exist).
/// `work-dir` is last and consumes the rest of its line — paths may
/// contain spaces.
fn config_blob(config: &ParaHashConfig, wire: bool) -> String {
    let threads = config
        .devices()
        .iter()
        .find(|d| d.kind() == DeviceKind::Cpu)
        .map_or(1, |d| d.parallelism());
    let token = if config.run_token.is_empty() { "-" } else { &config.run_token };
    format!(
        "k {}\np {}\npartitions {}\nlambda {:016x}\nalpha {:016x}\n\
         table-memory-budget {}\nout-of-core {}\nthreads {}\ndigest {:016x}\n\
         run-token {}\ntransfer {}\nwork-dir {}",
        config.k,
        config.p,
        config.partitions,
        config.sizing.lambda.to_bits(),
        config.sizing.alpha.to_bits(),
        config.table_memory_budget,
        config.out_of_core as u8,
        threads,
        config.input_digest,
        token,
        if wire { "wire" } else { "fs" },
        config.work_dir.display(),
    )
}

/// Parses [`config_blob`] back into a worker-side configuration: same
/// build parameters, but CPU-only, strict (every failure must surface
/// as a wire `failed` message — quarantine policy belongs to the
/// parent), and with subgraph persistence forced on (the committed file
/// is the result channel). The third return says whether partition
/// bytes travel over the wire (`transfer wire`).
fn config_from_blob(blob: &str) -> Result<(ParaHashConfig, Fingerprint, bool)> {
    let mut k = None;
    let mut p = None;
    let mut partitions = None;
    let mut lambda = None;
    let mut alpha = None;
    let mut budget = None;
    let mut out_of_core = None;
    let mut threads = None;
    let mut digest = None;
    let mut token = None;
    let mut wire = None;
    let mut work_dir = None;
    for line in blob.lines() {
        let (key, value) = line
            .split_once(' ')
            .ok_or_else(|| shard_err(format!("config blob line without a value: `{line}`")))?;
        let int = |what: &str| -> Result<u64> {
            value.parse().map_err(|e| shard_err(format!("config blob: bad {what}: {e}")))
        };
        let bits = |what: &str| -> Result<f64> {
            u64::from_str_radix(value, 16)
                .map(f64::from_bits)
                .map_err(|e| shard_err(format!("config blob: bad {what}: {e}")))
        };
        match key {
            "k" => k = Some(int("k")? as usize),
            "p" => p = Some(int("p")? as usize),
            "partitions" => partitions = Some(int("partitions")? as usize),
            "lambda" => lambda = Some(bits("lambda")?),
            "alpha" => alpha = Some(bits("alpha")?),
            "table-memory-budget" => budget = Some(int("table-memory-budget")?),
            "out-of-core" => out_of_core = Some(int("out-of-core")? != 0),
            "threads" => threads = Some(int("threads")? as usize),
            "digest" => {
                digest = Some(
                    u64::from_str_radix(value, 16)
                        .map_err(|e| shard_err(format!("config blob: bad digest: {e}")))?,
                )
            }
            "run-token" => token = Some(if value == "-" { String::new() } else { value.into() }),
            "transfer" => {
                wire = Some(match value {
                    "wire" => true,
                    "fs" => false,
                    other => {
                        return Err(shard_err(format!("config blob: unknown transfer `{other}`")))
                    }
                })
            }
            "work-dir" => work_dir = Some(PathBuf::from(value)),
            other => return Err(shard_err(format!("config blob: unknown key `{other}`"))),
        }
    }
    let missing = |what: &str| shard_err(format!("config blob is missing `{what}`"));
    let (k, p, partitions) = (
        k.ok_or_else(|| missing("k"))?,
        p.ok_or_else(|| missing("p"))?,
        partitions.ok_or_else(|| missing("partitions"))?,
    );
    let mut config = ParaHashConfig::builder()
        .k(k)
        .p(p)
        .partitions(partitions)
        .sizing(hashgraph::SizingParams {
            lambda: lambda.ok_or_else(|| missing("lambda"))?,
            alpha: alpha.ok_or_else(|| missing("alpha"))?,
        })
        .table_memory_budget(budget.ok_or_else(|| missing("table-memory-budget"))?)
        .out_of_core(out_of_core.ok_or_else(|| missing("out-of-core"))?)
        .cpu_threads(threads.ok_or_else(|| missing("threads"))?)
        .work_dir(work_dir.ok_or_else(|| missing("work-dir"))?)
        .write_subgraphs(true)
        .strict(true)
        .build()?;
    config.run_token = token.ok_or_else(|| missing("run-token"))?;
    let fingerprint =
        Fingerprint { k, p, partitions, input_digest: digest.ok_or_else(|| missing("digest"))? };
    config.input_digest = fingerprint.input_digest;
    Ok((config, fingerprint, wire.ok_or_else(|| missing("transfer"))?))
}

// ---------------------------------------------------------------------
// Worker side.
// ---------------------------------------------------------------------

/// Where a worker's parent lives.
enum Endpoint {
    /// Filesystem socket of a same-machine parent.
    Unix(PathBuf),
    /// `host:port` of a (possibly remote) TCP parent.
    Tcp(String),
}

impl Endpoint {
    fn connect(&self) -> std::io::Result<Box<dyn Transport>> {
        match self {
            Endpoint::Unix(path) => connect_unix(path),
            Endpoint::Tcp(addr) => connect_tcp(addr),
        }
    }

    fn describe(&self) -> String {
        match self {
            Endpoint::Unix(path) => path.display().to_string(),
            Endpoint::Tcp(addr) => addr.clone(),
        }
    }
}

/// Routes a process into the shard-worker loop when the parent's
/// environment marks it as one. **Call this first in `main`** (or in
/// the dedicated worker-entry test of a test binary): a production
/// binary spawned as a worker then serves its leases and exits instead
/// of running its own workload.
///
/// Returns `Ok(false)` immediately in an ordinary process (the
/// variables are absent), `Ok(true)` after a completed worker run.
///
/// # Errors
///
/// Connection, protocol, or configuration failures inside the worker
/// loop. Build failures of individual partitions are *not* errors here
/// — they are reported to the parent as `failed` messages and retried
/// or quarantined there.
pub fn worker_from_env() -> Result<bool> {
    let Ok(worker) = std::env::var(ENV_WORKER) else { return Ok(false) };
    let endpoint = if let Ok(addr) = std::env::var(ENV_CONNECT) {
        Endpoint::Tcp(addr)
    } else if let Ok(socket) = std::env::var(ENV_SOCKET) {
        Endpoint::Unix(PathBuf::from(socket))
    } else {
        return Ok(false);
    };
    let worker: usize = worker
        .parse()
        .map_err(|e| shard_err(format!("{ENV_WORKER}=`{worker}` is not a worker id: {e}")))?;
    run_worker_loop(&endpoint, worker)?;
    Ok(true)
}

/// Joins a (possibly remote) parent's shard cluster over TCP and serves
/// leases until the parent says `finished`. This is the library half of
/// `dbg worker --connect <addr>`: run it on any machine that can reach
/// the parent's [`listen`](crate::ParaHashConfigBuilder::listen)
/// address; partition payloads and subgraph results travel over the
/// wire, so no shared filesystem is needed.
///
/// # Errors
///
/// An unreachable parent (after the bounded reconnect budget), a
/// version-skew denial, or a protocol/configuration failure. Individual
/// partition build failures are reported to the parent, not returned.
pub fn run_remote_worker(addr: &str, worker: usize) -> Result<()> {
    run_worker_loop(&Endpoint::Tcp(addr.to_string()), worker)
}

/// Parses a `"<worker>@<nth>"` fault spec scoped to this worker.
fn spec_before(var: &str, worker: usize) -> Option<usize> {
    let spec = std::env::var(var).ok()?;
    let (w, nth) = spec.split_once('@')?;
    if w.parse::<usize>().ok()? != worker {
        return None;
    }
    nth.parse().ok()
}

/// `Some(nth)` when this worker must abort before its `nth` assignment.
fn kill_before(worker: usize) -> Option<usize> {
    spec_before(ENV_KILL, worker)
}

/// `Some(nth)` when this worker must stall (hold the lease silently)
/// before its `nth` assignment.
fn stall_before(worker: usize) -> Option<usize> {
    spec_before(ENV_STALL, worker)
}

/// Worker state that must survive reconnects: the assignment counter
/// feeds the kill/stall specs (an aborted-and-respawned worker is a new
/// process, but a *reconnected* one keeps counting).
struct WorkerSession {
    worker: usize,
    /// Assignments received across all sessions of this process.
    assigned: usize,
    /// Whether any session ever received the config (the parent was
    /// reachable and sane at least once).
    served_any: bool,
    /// Whether the *current* session received the config; a productive
    /// session refunds the reconnect budget.
    progressed: bool,
}

/// How one connected session ended.
enum SessionEnd {
    /// The parent said `finished`: the run is over.
    Finished,
    /// The connection (or the parent) went away; the text says how.
    /// The outer loop decides whether to reconnect.
    Lost(String),
}

/// The worker loop: connect, serve one session, and on connection loss
/// retry with the tuned backoff — exponential, capped, and jittered by
/// worker id so a cluster restarting against a rebooted parent doesn't
/// stampede. A session that got as far as the config refunds the
/// attempt budget: transient mid-run drops shouldn't accumulate into
/// a permanent exit while the parent keeps coming back.
fn run_worker_loop(endpoint: &Endpoint, worker: usize) -> Result<()> {
    let tuning = ShardTuning::from_env();
    let attempts = tuning.reconnect.attempts.max(1);
    let mut sess =
        WorkerSession { worker, assigned: 0, served_any: false, progressed: false };
    let mut failures: u32 = 0;
    loop {
        let end = match endpoint.connect() {
            Ok(conn) => serve_session(conn, &mut sess, &tuning)?,
            Err(e) => SessionEnd::Lost(format!("connecting: {e}")),
        };
        let why = match end {
            SessionEnd::Finished => return Ok(()),
            SessionEnd::Lost(why) => why,
        };
        failures = if sess.progressed { 1 } else { failures + 1 };
        // One refund per productive session: a failed *connect* never
        // reaches serve_session (which owns this flag), and a stale
        // `true` here would refund forever — a worker outliving the
        // parent's listener must run out of attempts, not spin.
        sess.progressed = false;
        if failures >= attempts {
            if sess.served_any {
                // The parent vanished for good after real work was
                // served; its supervision loop already requeued our
                // leases. Exit cleanly — a drained cluster is not a
                // worker bug.
                return Ok(());
            }
            return Err(shard_err(format!(
                "cannot reach shard parent at {}: {why} (after {failures} attempt(s))",
                endpoint.describe()
            )));
        }
        std::thread::sleep(tuning.reconnect.delay(failures, worker as u64));
    }
}

/// Sends heartbeat frames on a dedicated thread while a build is in
/// flight, so the parent can tell a slow worker (pulsing) from a hung
/// one (silent). Dropping the ticker stops *and joins* the thread —
/// the reply that follows a build must never interleave with a pulse.
struct HeartbeatTicker {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl HeartbeatTicker {
    fn start(mut sender: Box<dyn FrameSender>, worker: usize, period: Duration) -> HeartbeatTicker {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let pulse = WireMsg::Heartbeat(worker).encode();
            loop {
                // Sleep the period in short slices so a finished build
                // reclaims this thread promptly.
                let mut slept = Duration::ZERO;
                while slept < period {
                    if flag.load(Ordering::SeqCst) {
                        return;
                    }
                    let slice = Duration::from_millis(10).min(period - slept);
                    std::thread::sleep(slice);
                    slept += slice;
                }
                if flag.load(Ordering::SeqCst) {
                    return;
                }
                if sender.send(&pulse).is_err() {
                    // Dead socket: the main loop's next send/recv will
                    // notice and reconnect; pulsing is pointless.
                    return;
                }
            }
        });
        HeartbeatTicker { stop, handle: Some(handle) }
    }
}

impl Drop for HeartbeatTicker {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// One connected session: hello/config handshake, then claim-build-
/// report until `finished` or the connection dies. Connection-scoped
/// failures return [`SessionEnd::Lost`] (the caller may reconnect);
/// only non-retryable conditions — a `deny`, a corrupt config, a local
/// setup failure — are `Err`.
fn serve_session(
    mut conn: Box<dyn Transport>,
    sess: &mut WorkerSession,
    tuning: &ShardTuning,
) -> Result<SessionEnd> {
    sess.progressed = false;
    if let Err(e) = conn.send(&WireMsg::Hello(sess.worker, PROTO_VERSION).encode()) {
        return Ok(SessionEnd::Lost(format!("sending hello: {e}")));
    }
    let frame = match conn.recv(MAX_FRAME, Some(tuning.request_timeout)) {
        Ok(Recv::Frame(frame)) => frame,
        Ok(Recv::Eof) => return Ok(SessionEnd::Lost("parent closed before `config`".into())),
        Ok(Recv::TimedOut) => {
            return Ok(SessionEnd::Lost(format!(
                "no `config` within {}ms",
                tuning.request_timeout.as_millis()
            )))
        }
        Err(e) => return Ok(SessionEnd::Lost(format!("receiving `config`: {e}"))),
    };
    let blob = match WireMsg::decode(&frame) {
        Ok(WireMsg::Config(blob)) => blob,
        // A denial is fatal by protocol contract: retrying the same
        // binary against the same parent can only be denied again.
        Ok(WireMsg::Deny(why)) => {
            return Err(shard_err(format!("parent denied worker {}: {why}", sess.worker)))
        }
        Ok(other) => {
            return Ok(SessionEnd::Lost(format!(
                "parent's first message was not `config`: {other:?}"
            )))
        }
        Err(e) => return Ok(SessionEnd::Lost(format!("undecodable `config` frame: {e}"))),
    };
    sess.progressed = true;
    sess.served_any = true;
    let (mut config, fingerprint, wire) = config_from_blob(&blob)?;
    let manifest = if wire {
        // Remote worker: the parent's filesystem does not exist here.
        // Build in a per-run scratch directory named by the run
        // fingerprint, so concurrent runs (or stale leftovers) don't
        // collide; payloads land under `superkmers/` exactly as the
        // partition store would have written them.
        let scratch = std::env::temp_dir()
            .join(format!("parahash-remote-{}-w{}", fingerprint.token(), sess.worker));
        std::fs::create_dir_all(scratch.join("superkmers"))?;
        std::fs::create_dir_all(scratch.join("subgraphs"))?;
        config.work_dir = scratch;
        None
    } else {
        Some(PartitionManifest::load(config.work_dir.join("superkmers"))?)
    };
    // The worker's own journal, in its own subdirectory: `sub-split` and
    // `subgraph-committed` records for the leases it built, replayable
    // for post-mortems and aggregated by cluster-wide resume. Reopened
    // (not truncated) so records survive reconnects.
    let journal = RunJournal::open_or_create(
        &config.work_dir.join(format!("worker-{}", sess.worker)),
        fingerprint,
    )?;
    let io = ThrottledIo::new(IoMode::Unthrottled);
    let kill = kill_before(sess.worker);
    let stall = stall_before(sess.worker);
    loop {
        if let Err(e) = conn.send(&WireMsg::Claim(sess.worker).encode()) {
            return Ok(SessionEnd::Lost(format!("sending claim: {e}")));
        }
        let frame = match conn.recv(MAX_FRAME, Some(tuning.request_timeout)) {
            Ok(Recv::Frame(frame)) => frame,
            Ok(Recv::Eof) => return Ok(SessionEnd::Lost("parent closed mid-run".into())),
            Ok(Recv::TimedOut) => {
                return Ok(SessionEnd::Lost(format!(
                    "no claim reply within {}ms",
                    tuning.request_timeout.as_millis()
                )))
            }
            Err(e) => return Ok(SessionEnd::Lost(format!("receiving claim reply: {e}"))),
        };
        let reply = match WireMsg::decode(&frame) {
            Ok(msg) => msg,
            // Desync, not protocol death: a dropped `assign` leaves the
            // next frame on the stream a raw partition blob, which is
            // not a text message. Drop the connection and resync with a
            // fresh session; the parent requeues whatever it leased us.
            Err(e) => return Ok(SessionEnd::Lost(format!("undecodable claim reply: {e}"))),
        };
        match reply {
            WireMsg::Assign(p, kmers) => {
                sess.assigned += 1;
                if kill == Some(sess.assigned) {
                    // Die exactly as a crashed worker would: no unwind,
                    // no cleanup, the lease left dangling.
                    std::process::abort();
                }
                if stall == Some(sess.assigned) {
                    // Arm the hang on *this* assignment only — arming
                    // earlier would let an unrelated send consume the
                    // trigger.
                    failpoint::arm("shard.net.delay", failpoint::FailAction::ReturnError, 1);
                }
                let (path, n_kmers) = if wire {
                    let payload = match conn.recv(MAX_PAYLOAD_FRAME, Some(tuning.request_timeout))
                    {
                        Ok(Recv::Frame(frame)) => frame,
                        Ok(Recv::Eof) => {
                            return Ok(SessionEnd::Lost("parent closed mid-payload".into()))
                        }
                        Ok(Recv::TimedOut) => {
                            return Ok(SessionEnd::Lost(format!(
                                "partition {p} payload never arrived ({}ms)",
                                tuning.request_timeout.as_millis()
                            )))
                        }
                        Err(e) => {
                            return Ok(SessionEnd::Lost(format!(
                                "receiving partition {p} payload: {e}"
                            )))
                        }
                    };
                    let bytes = match decode_blob(payload) {
                        Ok(bytes) => bytes,
                        Err(e) => {
                            return Ok(SessionEnd::Lost(format!(
                                "partition {p} payload rejected: {e}"
                            )))
                        }
                    };
                    let path =
                        config.work_dir.join("superkmers").join(format!("part-{p:05}.skm"));
                    if let Err(e) = std::fs::write(&path, &bytes) {
                        // Local scratch trouble: a polite failure the
                        // parent can re-lease elsewhere.
                        let detail =
                            format!("storing shipped partition: {e}").replace(['\n', '\r'], " ");
                        if conn.send(&WireMsg::Failed(p, detail).encode()).is_err() {
                            return Ok(SessionEnd::Lost("sending failure report".into()));
                        }
                        continue;
                    }
                    (path, kmers)
                } else {
                    let manifest = manifest.as_ref().expect("fs transfer has a manifest");
                    (manifest.partition_path(p), manifest.stats()[p].kmers)
                };
                if failpoint::hit("shard.net.delay").is_err() {
                    // Injected hang: hold the lease in silence — no
                    // heartbeats are running yet, so a short parent
                    // deadline evicts us as hung, which is the point.
                    std::thread::sleep(stall_delay());
                }
                let ticker =
                    HeartbeatTicker::start(conn.sender(), sess.worker, tuning.heartbeat);
                let built =
                    build_and_commit_partition(&config, p, &path, n_kmers, &io, Some(&journal));
                // Stop (and join) the pulse *before* replying: a
                // heartbeat must never interleave with the result and
                // its payload.
                drop(ticker);
                let (reply, payload) = match built {
                    Ok(out) => {
                        let detail =
                            format!("ok {} {} {}", out.resizes, out.peak_table_bytes, out.fanout);
                        if wire {
                            // Read the committed bytes *before* claiming
                            // success: the parent must never be left
                            // waiting for a payload that cannot come.
                            let sub =
                                config.work_dir.join("subgraphs").join(format!("sub-{p:05}.dbg"));
                            match std::fs::read(&sub) {
                                Ok(bytes) => {
                                    (WireMsg::Result(p, detail), Some(encode_blob(&bytes)))
                                }
                                Err(e) => {
                                    let detail = format!("re-reading built subgraph: {e}")
                                        .replace(['\n', '\r'], " ");
                                    (WireMsg::Failed(p, detail), None)
                                }
                            }
                        } else {
                            (WireMsg::Result(p, detail), None)
                        }
                    }
                    Err(e) => {
                        (WireMsg::Failed(p, e.to_string().replace(['\n', '\r'], " ")), None)
                    }
                };
                if conn.send(&reply.encode()).is_err() {
                    return Ok(SessionEnd::Lost("sending build report".into()));
                }
                if let Some(payload) = payload {
                    if conn.send(&payload).is_err() {
                        return Ok(SessionEnd::Lost("sending subgraph payload".into()));
                    }
                }
            }
            WireMsg::Finished => {
                if wire {
                    // The scratch directory was only ever the wire's
                    // staging area.
                    let _ = std::fs::remove_dir_all(&config.work_dir);
                }
                return Ok(SessionEnd::Finished);
            }
            other => {
                return Ok(SessionEnd::Lost(format!("unexpected message from parent: {other:?}")))
            }
        }
    }
}

// ---------------------------------------------------------------------
// Parent side.
// ---------------------------------------------------------------------

/// What the connection handlers accumulate across workers.
#[derive(Default)]
struct ShardStats {
    resizes: usize,
    peak_table_bytes: u64,
    sub_splits: Vec<(usize, usize)>,
    built: BTreeSet<usize>,
}

/// Step 2 as a multi-process (and optionally multi-node) shard: bind a
/// listener, spawn [`workers`](crate::ParaHashConfigBuilder::workers)
/// child processes, accept whoever connects (children and remote
/// `dbg worker` joiners alike), lease them partitions largest-first,
/// verify and absorb their committed subgraphs. Drop-in replacement for
/// [`run_step2_with`](crate::step2::run_step2_with) on the two-phase
/// path — same signature, same journal records in the parent's
/// `run.journal`, byte-identical subgraph files and graph.
///
/// # Errors
///
/// Socket/spawn failures, a partition that exhausted its lease attempts
/// *and* the in-process fallback (strict mode), or any error of the
/// fallback builds.
pub(crate) fn run_step2_sharded(
    config: &ParaHashConfig,
    manifest: &PartitionManifest,
    io: &ThrottledIo,
    journal: Option<&RunJournal>,
    skip: &BTreeSet<usize>,
) -> Result<(DeBruijnGraph, StepReport)> {
    debug_assert!(config.workers > 0 || config.listen.is_some());
    let started = Instant::now();
    let tuning = ShardTuning::from_env();
    let n = manifest.num_partitions();
    let sub_dir = config.work_dir.join("subgraphs");
    std::fs::create_dir_all(&sub_dir)?;

    // LPT dispatch order, as in the in-process scheduler: the biggest
    // partitions start first so the tail stays short. Ties break to the
    // lower index for deterministic assignment logs.
    let mut order: Vec<usize> = (0..n).filter(|i| !skip.contains(i)).collect();
    order.sort_by(|&a, &b| {
        manifest.stats()[b].bytes.cmp(&manifest.stats()[a].bytes).then(a.cmp(&b))
    });

    // Nothing left to distribute — a resumed run whose every partition
    // already committed (and re-verified). Don't bind a listener or
    // spawn workers: children of a parent with no work would only wait
    // out their config deadline against a drained cluster.
    if order.is_empty() {
        return Ok((
            DeBruijnGraph::new(config.k),
            StepReport {
                step: 2,
                pipeline: PipelineReport {
                    elapsed: started.elapsed(),
                    input_time: Duration::ZERO,
                    output_time: Duration::ZERO,
                    shares: Vec::new(),
                    partitions: 0,
                    spans: Vec::new(),
                    cancelled: false,
                },
                cpu_compute: Duration::ZERO,
                gpu_compute: Duration::ZERO,
                contention: None,
                step1_stats: None,
                resizes: 0,
                peak_partition_bytes: 0,
                peak_table_bytes: 0,
                peak_resident_store_bytes: 0,
                quarantined: Vec::new(),
                sub_splits: Vec::new(),
                coproc: None,
                exhausted_leases: Vec::new(),
            },
        ));
    }

    let tcp = config.listen.is_some()
        || std::env::var(ENV_TRANSPORT).map(|v| v == "tcp").unwrap_or(false);
    let listener = if tcp {
        let bind = config.listen.as_deref().unwrap_or("127.0.0.1:0");
        ShardListener::bind_tcp(bind)
            .map_err(|e| shard_err(format!("binding worker listener {bind}: {e}")))?
    } else {
        let socket_path = config.work_dir.join(SOCKET_FILE);
        ShardListener::bind_unix(&socket_path).map_err(|e| {
            shard_err(format!("binding worker socket {}: {e}", socket_path.display()))
        })?
    };
    let addr = listener.addr();

    let exe = std::env::current_exe().map_err(ParaHashError::Io)?;
    let mut children = Vec::with_capacity(config.workers);
    for w in 0..config.workers {
        let mut cmd = std::process::Command::new(&exe);
        cmd.args(&config.worker_args).env(ENV_WORKER, w.to_string());
        if tcp {
            cmd.env(ENV_CONNECT, &addr).env_remove(ENV_SOCKET);
        } else {
            cmd.env(ENV_SOCKET, &addr).env_remove(ENV_CONNECT);
        }
        let child =
            cmd.spawn().map_err(|e| shard_err(format!("spawning worker {w}: {e}")))?;
        children.push(child);
    }

    let board = Mutex::new(LeaseBoard::new(order, n, MAX_LEASE_ATTEMPTS));
    let stats = Mutex::new(ShardStats::default());
    let fs_blob = config_blob(config, false);
    let wire_blob = config_blob(config, true);
    let shutdown = AtomicBool::new(false);
    let active = AtomicUsize::new(0);
    let ever_connected = AtomicBool::new(false);
    let mut handler_faults: Vec<ParaHashError> = Vec::new();

    std::thread::scope(|s| {
        let accept = s.spawn(|| {
            let mut handlers = Vec::new();
            loop {
                let conn = match listener.accept() {
                    Ok(conn) => conn,
                    Err(_) => break,
                };
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                ever_connected.store(true, Ordering::SeqCst);
                active.fetch_add(1, Ordering::SeqCst);
                handlers.push(s.spawn(|| {
                    let served = serve_worker(
                        conn, &board, &stats, &fs_blob, &wire_blob, &sub_dir, journal, io,
                        manifest, &tuning,
                    );
                    active.fetch_sub(1, Ordering::SeqCst);
                    served
                }));
            }
            handlers.into_iter().filter_map(|h| h.join().ok().and_then(|r| r.err())).collect()
        });
        // Supervision: the run ends when the board drains, or when the
        // cluster does — no live child process and no active connection
        // (remote joiners get `wait_for_first` to show up when nothing
        // was spawned locally). Whatever is left un-built falls back to
        // the in-process path below.
        loop {
            if board.lock().remaining() == 0 {
                break;
            }
            let child_alive =
                children.iter_mut().any(|c| matches!(c.try_wait(), Ok(None) | Err(_)));
            if child_alive || active.load(Ordering::SeqCst) > 0 {
                std::thread::sleep(Duration::from_millis(20));
                continue;
            }
            if children.is_empty()
                && !ever_connected.load(Ordering::SeqCst)
                && started.elapsed() < tuning.wait_for_first
            {
                std::thread::sleep(Duration::from_millis(20));
                continue;
            }
            break;
        }
        shutdown.store(true, Ordering::SeqCst);
        listener.unblock();
        handler_faults = accept.join().unwrap_or_default();
    });
    // Reap every child before trusting shared state: an evicted-but-
    // alive worker could otherwise still be writing under the work
    // directory while the parent verifies and absorbs.
    for child in &mut children {
        let _ = child.wait();
    }
    if let ShardListener::Unix(_, path) = &listener {
        let _ = std::fs::remove_file(path);
    }

    // A handler fault is a *parent-side* failure (journal append) — the
    // affected worker's leases were requeued when its connection
    // closed, but a journaling failure must abort like in-process.
    if let Some(e) = handler_faults.into_iter().next() {
        if config.strict {
            let _ = std::fs::remove_dir_all(&sub_dir);
            return Err(e);
        }
    }

    let mut board = board.into_inner();
    let mut stats = stats.into_inner();
    let mut quarantined: Vec<QuarantinedPartition> = Vec::new();
    // De-race: a worker's reconnection can cross its old connection's
    // teardown, letting `release_worker` charge — and even exhaust — a
    // lease whose build actually finished and verified. A partition
    // that is both exhausted-on-paper and verified-built is built.
    let mut exhausted_leases = board.exhausted().to_vec();
    exhausted_leases.retain(|x| !stats.built.contains(&x.partition));

    // Leases that burned every attempt: strict runs abort, non-strict
    // runs set the partition aside exactly like an in-process read
    // failure would.
    for x in &exhausted_leases {
        if config.strict {
            let _ = std::fs::remove_dir_all(&sub_dir);
            return Err(shard_err(format!(
                "partition {} failed {} worker attempt(s): {}",
                x.partition, x.attempts, x.reason
            )));
        }
        quarantined.push(QuarantinedPartition {
            index: x.partition,
            reason: format!("{} (after {} worker attempts)", x.reason, x.attempts),
        });
    }

    // Orphans — partitions still pending after the cluster drained
    // (workers all died or were evicted, or all drew `finished` while a
    // failure was requeueing) — fall back to in-process builds by the
    // parent: graceful degradation, not an error.
    let mut orphans = Vec::new();
    while let Some(p) = board.claim(usize::MAX) {
        orphans.push(p);
    }
    if !orphans.is_empty() {
        let mut local = config.clone();
        local.workers = 0;
        local.listen = None;
        local.strict = true;
        local.write_subgraphs = true;
        for p in orphans {
            match build_and_commit_partition(
                &local,
                p,
                &manifest.partition_path(p),
                manifest.stats()[p].kmers,
                io,
                journal,
            ) {
                Ok(out) => {
                    stats.resizes += out.resizes;
                    stats.peak_table_bytes = stats.peak_table_bytes.max(out.peak_table_bytes);
                    if out.fanout >= 2 {
                        stats.sub_splits.push((p, out.fanout));
                    }
                    stats.built.insert(p);
                }
                Err(e) if config.strict => {
                    let _ = std::fs::remove_dir_all(&sub_dir);
                    return Err(e);
                }
                Err(e) => {
                    quarantined
                        .push(QuarantinedPartition { index: p, reason: e.to_string() });
                }
            }
        }
    }

    // Absorb what this step built (resume-skipped partitions are
    // absorbed by the driver, as on the in-process path). Files were
    // already verified when the worker reported them; fallback builds
    // are trusted like in-process commits.
    let mut graph = DeBruijnGraph::new(config.k);
    let mut peak_partition = 0u64;
    for &p in &stats.built {
        let bytes = std::fs::read(sub_dir.join(format!("sub-{p:05}.dbg")))?;
        graph.absorb(decode_subgraph_checked(&bytes, Some(p))?);
        peak_partition = peak_partition.max(manifest.stats()[p].bytes);
    }

    stats.sub_splits.sort_unstable();
    stats.sub_splits.dedup();
    if let Some(journal) = journal {
        for q in &quarantined {
            journal.append(&JournalEvent::Quarantined(q.index, q.reason.clone()))?;
        }
    }
    if !quarantined.is_empty() || !stats.sub_splits.is_empty() {
        let mut marked = manifest.clone();
        for q in &quarantined {
            marked.quarantine(q.index, q.reason.clone());
        }
        for &(i, fanout) in &stats.sub_splits {
            marked.set_sub_split(i, fanout);
        }
        marked.save()?;
    }
    if !config.write_subgraphs {
        // The files were only ever the wire's result channel; the user
        // asked for none. (The resume skip-set is always empty in this
        // configuration, so nothing downstream reads them.)
        std::fs::remove_dir_all(&sub_dir)?;
    }

    let partitions_built = stats.built.len();
    let report = StepReport {
        step: 2,
        pipeline: PipelineReport {
            elapsed: started.elapsed(),
            input_time: Duration::ZERO,
            output_time: Duration::ZERO,
            shares: Vec::new(),
            partitions: partitions_built,
            spans: Vec::new(),
            cancelled: false,
        },
        // Device meters live in the worker processes; the parent's own
        // devices did no Step-2 work (fallback builds excepted, whose
        // compute is folded into `elapsed`).
        cpu_compute: Duration::ZERO,
        gpu_compute: Duration::ZERO,
        contention: None,
        step1_stats: None,
        resizes: stats.resizes,
        peak_partition_bytes: peak_partition,
        peak_table_bytes: stats.peak_table_bytes,
        peak_resident_store_bytes: 0,
        quarantined,
        sub_splits: stats.sub_splits,
        coproc: None,
        exhausted_leases,
    };
    Ok((graph, report))
}

/// One connection's server loop: handshake (with version check),
/// configure the worker, lease it partitions, verify what it reports
/// back. A connection that closes, stalls past the heartbeat deadline,
/// or turns to garbage frees the worker's outstanding leases — the
/// *connection* is expendable; only a parent-side journal failure is a
/// real fault (`Err`).
#[allow(clippy::too_many_arguments)]
fn serve_worker(
    mut conn: Box<dyn Transport>,
    board: &Mutex<LeaseBoard>,
    stats: &Mutex<ShardStats>,
    fs_blob: &str,
    wire_blob: &str,
    sub_dir: &Path,
    journal: Option<&RunJournal>,
    io: &ThrottledIo,
    manifest: &PartitionManifest,
    tuning: &ShardTuning,
) -> Result<()> {
    // Handshake. Nothing is leased yet, so every failure mode here —
    // the shutdown dummy connection, a garbled or dropped hello, a
    // version-skewed worker — just ends the connection.
    let frame = match conn.recv(MAX_FRAME, Some(tuning.request_timeout)) {
        Ok(Recv::Frame(frame)) => frame,
        _ => return Ok(()),
    };
    let (worker, version) = match WireMsg::decode(&frame) {
        Ok(WireMsg::Hello(worker, version)) => (worker, version),
        _ => return Ok(()),
    };
    if version != PROTO_VERSION {
        let why = format!(
            "protocol version {version} does not match the parent's {PROTO_VERSION}; \
             update the worker binary to the parent's build and reconnect"
        );
        let _ = conn.send(&WireMsg::Deny(why).encode());
        return Ok(());
    }
    // Remote connections cannot read the parent's filesystem: they get
    // the `transfer wire` config and shipped payloads.
    let wire = conn.remote();
    let blob = if wire { wire_blob } else { fs_blob };
    if conn.send(&WireMsg::Config(blob.to_string()).encode()).is_err() {
        return Ok(());
    }
    loop {
        let msg = match conn.recv(MAX_FRAME, Some(tuning.idle_timeout)) {
            Ok(Recv::Frame(frame)) => match WireMsg::decode(&frame) {
                Ok(msg) => msg,
                Err(e) => {
                    // Garbled traffic costs the connection, never the
                    // run: requeue and let the worker reconnect.
                    board
                        .lock()
                        .release_worker(worker, &format!("sent an undecodable frame: {e}"));
                    return Ok(());
                }
            },
            // Clean exit and crash look the same from here: requeue
            // whatever the worker still held (crash) — a no-op after a
            // clean `finished` exit (it held nothing).
            Ok(Recv::Eof) => {
                board.lock().release_worker(worker, "disconnected holding the lease");
                return Ok(());
            }
            // The heartbeat deadline lapsed: hung, not slow. Evict.
            Ok(Recv::TimedOut) => {
                board.lock().release_worker(
                    worker,
                    &format!(
                        "sent no heartbeat within {}ms; evicted as hung",
                        tuning.idle_timeout.as_millis()
                    ),
                );
                return Ok(());
            }
            Err(e) => {
                board.lock().release_worker(worker, &format!("connection failed: {e}"));
                return Ok(());
            }
        };
        match msg {
            // Liveness pulse: its arrival already reset the receive
            // deadline; it carries nothing else.
            WireMsg::Heartbeat(_) => continue,
            WireMsg::Claim(w) => {
                let leased = board.lock().claim(w);
                match leased {
                    Some(p) => {
                        // Journaled *before* the assignment goes out:
                        // after a parent crash, replay shows exactly
                        // which partitions were in flight.
                        if let Some(journal) = journal {
                            journal.append(&JournalEvent::WorkerLease(w, p))?;
                        }
                        let assign = WireMsg::Assign(p, manifest.stats()[p].kmers);
                        if conn.send(&assign.encode()).is_err() {
                            board.lock().release_worker(worker, "disconnected during assignment");
                            return Ok(());
                        }
                        if wire {
                            let bytes = match io.read_file(manifest.partition_path(p)) {
                                Ok(bytes) => bytes,
                                Err(e) => {
                                    // A parent-side read failure is the
                                    // partition's problem, not the
                                    // worker's — but the worker is now
                                    // waiting for a payload this
                                    // connection can't deliver.
                                    board
                                        .lock()
                                        .fail(p, &format!("reading partition to ship: {e}"));
                                    return Ok(());
                                }
                            };
                            if conn.send(&encode_blob(&bytes)).is_err() {
                                board.lock().release_worker(worker, "disconnected mid-payload");
                                return Ok(());
                            }
                        }
                    }
                    None => {
                        if conn.send(&WireMsg::Finished.encode()).is_err() {
                            return Ok(());
                        }
                    }
                }
            }
            WireMsg::Result(p, detail) => {
                if wire {
                    // The subgraph payload follows the result frame; a
                    // final heartbeat may still be queued ahead of it.
                    let payload = loop {
                        match conn.recv(MAX_PAYLOAD_FRAME, Some(tuning.request_timeout)) {
                            Ok(Recv::Frame(frame)) => {
                                if frame.first() == Some(&BLOB_TAG) {
                                    break Some(frame);
                                }
                                match WireMsg::decode(&frame) {
                                    Ok(WireMsg::Heartbeat(_)) => continue,
                                    _ => break None,
                                }
                            }
                            _ => break None,
                        }
                    };
                    let Some(payload) = payload else {
                        board.lock().fail(
                            p,
                            &format!(
                                "worker {worker} reported success but its subgraph payload \
                                 never arrived"
                            ),
                        );
                        return Ok(());
                    };
                    let committed = decode_blob(payload).and_then(|bytes| {
                        pipeline::commit::commit_bytes(
                            &sub_dir.join(format!("sub-{p:05}.dbg")),
                            &bytes,
                        )
                    });
                    if let Err(e) = committed {
                        // The connection is still framed correctly —
                        // only this lease failed.
                        board.lock().fail(p, &format!("committing shipped subgraph: {e}"));
                        continue;
                    }
                }
                // Trust nothing: the committed file must exist and pass
                // its end-to-end checks before the lease completes —
                // the same seam for local commits and shipped bytes.
                let verified = std::fs::read(sub_dir.join(format!("sub-{p:05}.dbg")))
                    .map_err(ParaHashError::Io)
                    .and_then(|bytes| decode_subgraph_checked(&bytes, Some(p)).map(|_| ()));
                match verified {
                    Ok(()) => {
                        let mut board = board.lock();
                        board.complete(p);
                        drop(board);
                        if let Some(journal) = journal {
                            journal.append(&JournalEvent::SubgraphCommitted(p))?;
                        }
                        let mut st = stats.lock();
                        st.built.insert(p);
                        let mut fields = detail.split_whitespace();
                        if fields.next() == Some("ok") {
                            if let (Some(r), Some(t), Some(f)) = (
                                fields.next().and_then(|v| v.parse::<usize>().ok()),
                                fields.next().and_then(|v| v.parse::<u64>().ok()),
                                fields.next().and_then(|v| v.parse::<usize>().ok()),
                            ) {
                                st.resizes += r;
                                st.peak_table_bytes = st.peak_table_bytes.max(t);
                                if f >= 2 {
                                    st.sub_splits.push((p, f));
                                }
                            }
                        }
                    }
                    Err(e) => {
                        board.lock().fail(
                            p,
                            &format!("worker {worker} reported success but the file fails: {e}"),
                        );
                    }
                }
            }
            WireMsg::Failed(p, detail) => {
                board.lock().fail(p, &detail);
            }
            other => {
                board
                    .lock()
                    .release_worker(worker, &format!("sent an unexpected message: {other:?}"));
                return Ok(());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(dir: &str) -> ParaHashConfig {
        ParaHashConfig::builder()
            .k(9)
            .p(5)
            .partitions(8)
            .cpu_threads(3)
            .table_memory_budget(1 << 20)
            .out_of_core(true)
            .work_dir(std::env::temp_dir().join(dir))
            .build()
            .unwrap()
    }

    #[test]
    fn config_blob_roundtrips_bit_exact() {
        let cfg = config("parahash-shard-blob");
        let (back, fp, wire) = config_from_blob(&config_blob(&cfg, false)).unwrap();
        assert_eq!(back.k, cfg.k);
        assert_eq!(back.p, cfg.p);
        assert_eq!(back.partitions, cfg.partitions);
        assert_eq!(back.sizing.lambda.to_bits(), cfg.sizing.lambda.to_bits());
        assert_eq!(back.sizing.alpha.to_bits(), cfg.sizing.alpha.to_bits());
        assert_eq!(back.table_memory_budget, cfg.table_memory_budget);
        assert_eq!(back.out_of_core, cfg.out_of_core);
        assert_eq!(back.work_dir, cfg.work_dir);
        assert_eq!(back.devices()[0].parallelism(), 3, "thread count crosses the wire");
        assert!(back.strict && back.write_subgraphs, "worker invariants forced on");
        assert!(!wire, "fs transfer decodes as local");
        assert_eq!(fp.k, 9);
        assert_eq!(fp.input_digest, 0, "no digest set on a bare config");
    }

    #[test]
    fn config_blob_carries_the_transfer_mode() {
        let cfg = config("parahash-shard-blob-wire");
        let (_, _, wire) = config_from_blob(&config_blob(&cfg, true)).unwrap();
        assert!(wire, "wire transfer crosses the blob");
        let blob = config_blob(&cfg, true);
        assert!(config_from_blob(&blob.replace("transfer wire", "transfer carrier-pigeon"))
            .is_err());
        let missing: String =
            blob.lines().filter(|l| !l.starts_with("transfer")).collect::<Vec<_>>().join("\n");
        assert!(config_from_blob(&missing).is_err(), "transfer mode is mandatory");
    }

    #[test]
    fn config_blob_rejects_damage() {
        let cfg = config("parahash-shard-blob-bad");
        let blob = config_blob(&cfg, false);
        assert!(config_from_blob(&blob.replace("k 9", "k nine")).is_err());
        assert!(config_from_blob(&blob.replace("digest", "digets")).is_err());
        let missing: String =
            blob.lines().filter(|l| !l.starts_with("alpha")).collect::<Vec<_>>().join("\n");
        assert!(config_from_blob(&missing).is_err(), "missing key must be rejected");
    }

    #[test]
    fn kill_spec_parses_and_scopes_to_the_worker() {
        // Uses a scoped fake env because the real one is process-global.
        std::env::set_var(ENV_KILL, "2@3");
        assert_eq!(kill_before(2), Some(3));
        assert_eq!(kill_before(1), None);
        std::env::set_var(ENV_KILL, "junk");
        assert_eq!(kill_before(2), None);
        std::env::remove_var(ENV_KILL);
        assert_eq!(kill_before(2), None);
    }

    #[test]
    fn stall_spec_uses_the_same_grammar() {
        std::env::set_var(ENV_STALL, "1@2");
        assert_eq!(stall_before(1), Some(2));
        assert_eq!(stall_before(0), None);
        std::env::remove_var(ENV_STALL);
        assert_eq!(stall_before(1), None);
    }

    #[test]
    fn tuning_defaults_are_sane() {
        // No env overrides in a unit-test process (the integration
        // suites set them per-child).
        let t = ShardTuning::from_env();
        assert!(t.idle_timeout >= t.heartbeat.saturating_mul(2), "deadline outlives a pulse");
        assert!(t.reconnect.attempts >= 1);
        assert!(!t.reconnect.delay(1, 0).is_zero(), "reconnects are paced");
    }
}
