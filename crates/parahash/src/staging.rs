//! Lock-free per-worker staging for the Step-1 emit path.
//!
//! The seed Step-1 kernel funnelled every superkmer through a
//! `Vec<Mutex<Vec<u8>>>` of shared partition buffers — one lock
//! acquisition *per superkmer*, straight across every worker thread. The
//! KMC 2/3 shape adopted here instead gives each worker an exclusive
//! [`StagingShard`]: one flat byte buffer plus counts per partition, and
//! the worker's reusable [`msp::MinimizerCursor`]. Workers check shards
//! out of a [`WorkerShards`] roster with a single atomic CAS per *read*;
//! every per-superkmer emit is then a plain append into thread-private
//! memory. After the kernel, the output stage drains the shards into the
//! partition writer in bulk and returns them to the [`ShardPool`], so all
//! buffer capacity (and the cursor's deque) is reused across batches —
//! zero heap allocation and zero cross-thread locks on the per-read path.
//!
//! The only mutex in this module is the pool's free list, touched twice
//! per *batch* (take/put), never per read or per superkmer.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, Ordering};

use msp::MinimizerCursor;
use parking_lot::Mutex;

/// One worker's private staging area: per-partition encoded superkmer
/// bytes, per-partition `(superkmers, kmers)` counts, and the worker's
/// streaming minimizer cursor. All allocations are retained across
/// batches (`clear` keeps capacity).
#[derive(Debug)]
pub(crate) struct StagingShard {
    /// Encoded records staged for each partition.
    pub buffers: Vec<Vec<u8>>,
    /// `(superkmers, kmers)` staged per partition.
    pub counts: Vec<(u64, u64)>,
    /// Reusable streaming scan state (monotone deque + p-mer windows).
    pub cursor: MinimizerCursor,
}

impl StagingShard {
    fn new(n_parts: usize, k: usize, p: usize) -> StagingShard {
        StagingShard {
            buffers: vec![Vec::new(); n_parts],
            counts: vec![(0, 0); n_parts],
            cursor: MinimizerCursor::new(k, p).expect("validated by caller"),
        }
    }

    /// Total staged payload bytes across partitions.
    pub fn staged_bytes(&self) -> u64 {
        self.buffers.iter().map(|b| b.len() as u64).sum()
    }

    /// Total staged superkmers across partitions.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn staged_superkmers(&self) -> u64 {
        self.counts.iter().map(|&(s, _)| s).sum()
    }

    /// Empties buffers and counts, retaining every allocation.
    pub fn clear(&mut self) {
        for b in &mut self.buffers {
            b.clear();
        }
        for c in &mut self.counts {
            *c = (0, 0);
        }
    }
}

/// Recycles [`StagingShard`]s across batches so their buffer capacity and
/// cursor state amortise to zero allocation at steady state. The free
/// list is locked once per take/put — strictly off the emit path.
#[derive(Debug)]
pub(crate) struct ShardPool {
    n_parts: usize,
    k: usize,
    p: usize,
    free: Mutex<Vec<StagingShard>>,
}

impl ShardPool {
    pub fn new(n_parts: usize, k: usize, p: usize) -> ShardPool {
        ShardPool { n_parts, k, p, free: Mutex::new(Vec::new()) }
    }

    /// Checks out `n` shards, creating fresh ones only when the pool has
    /// fewer than `n` warm shards (first batches only, at steady state
    /// every shard is recycled).
    pub fn take(&self, n: usize) -> Vec<StagingShard> {
        let mut free = self.free.lock();
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            match free.pop() {
                Some(shard) => out.push(shard),
                None => out.push(StagingShard::new(self.n_parts, self.k, self.p)),
            }
        }
        out
    }

    /// Returns drained shards to the pool, clearing them (capacity kept).
    pub fn put(&self, shards: impl IntoIterator<Item = StagingShard>) {
        let mut cleared: Vec<StagingShard> = shards
            .into_iter()
            .map(|mut s| {
                s.clear();
                s
            })
            .collect();
        self.free.lock().append(&mut cleared);
    }
}

/// Roster of shards shared by the worker threads of one kernel launch.
///
/// Workers [`checkout`](Self::checkout) a shard at the start of each read
/// and release it (guard drop) at the end: one CAS acquire + one release
/// store per read, no mutex. Exclusivity is enforced by the `busy` flags
/// — a shard whose flag was won by CAS is referenced by exactly one
/// worker, which is what makes the `UnsafeCell` access sound.
pub(crate) struct WorkerShards {
    slots: Vec<UnsafeCell<StagingShard>>,
    busy: Vec<AtomicBool>,
}

// SAFETY: a slot is only dereferenced while its `busy` flag is held (won
// via compare_exchange with Acquire ordering; released with a Release
// store), so no two threads ever alias a shard mutably.
unsafe impl Sync for WorkerShards {}

impl WorkerShards {
    /// Wraps `shards` for concurrent checkout. Size the roster to the
    /// kernel's parallelism: checkout spins only if more workers than
    /// shards run simultaneously.
    pub fn new(shards: Vec<StagingShard>) -> WorkerShards {
        let busy = shards.iter().map(|_| AtomicBool::new(false)).collect();
        WorkerShards { slots: shards.into_iter().map(UnsafeCell::new).collect(), busy }
    }

    /// Acquires an idle shard (lock-free: scans the flag array with CAS).
    pub fn checkout(&self) -> ShardGuard<'_> {
        loop {
            for (i, flag) in self.busy.iter().enumerate() {
                if flag
                    .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
                {
                    return ShardGuard { roster: self, idx: i };
                }
            }
            // More concurrent workers than shards — only possible if the
            // roster was under-sized for the device's parallelism.
            std::hint::spin_loop();
        }
    }

    /// Unwraps the shards once the kernel has completed (single owner
    /// again, so no flags needed).
    pub fn into_shards(self) -> Vec<StagingShard> {
        debug_assert!(
            self.busy.iter().all(|b| !b.load(Ordering::Acquire)),
            "shard still checked out after kernel completion"
        );
        self.slots.into_iter().map(UnsafeCell::into_inner).collect()
    }
}

/// Exclusive access to one [`StagingShard`], released on drop.
pub(crate) struct ShardGuard<'a> {
    roster: &'a WorkerShards,
    idx: usize,
}

impl std::ops::Deref for ShardGuard<'_> {
    type Target = StagingShard;

    fn deref(&self) -> &StagingShard {
        // SAFETY: the busy flag guarantees exclusive access (see Sync impl).
        unsafe { &*self.roster.slots[self.idx].get() }
    }
}

impl std::ops::DerefMut for ShardGuard<'_> {
    fn deref_mut(&mut self) -> &mut StagingShard {
        // SAFETY: as above.
        unsafe { &mut *self.roster.slots[self.idx].get() }
    }
}

impl Drop for ShardGuard<'_> {
    fn drop(&mut self) {
        self.roster.busy[self.idx].store(false, Ordering::Release);
    }
}

/// A pre-sized slot array where each index is written by **exactly one**
/// kernel invocation — the shape of the SimGpu boundaries kernel, whose
/// work items are the reads of a batch and whose outputs are disjoint by
/// construction. Replaces the seed's per-read `Mutex<Vec<_>>` staging
/// with plain unsynchronised writes (the kernel launch itself is the
/// happens-before edge: `Device::execute` joins its workers before
/// returning, so the host reads the slots strictly after every write).
pub(crate) struct WriteOnceSlots<T> {
    slots: Vec<UnsafeCell<T>>,
    #[cfg(debug_assertions)]
    written: Vec<AtomicBool>,
}

// SAFETY: callers uphold the write-once-per-index contract of `with_mut`
// (each index touched by exactly one kernel work item), so no two threads
// alias a slot; debug builds verify the contract with `written` flags.
unsafe impl<T: Send> Sync for WriteOnceSlots<T> {}

impl<T> WriteOnceSlots<T> {
    /// Wraps a pre-sized slot vector (one element per kernel work item).
    pub fn new(slots: Vec<T>) -> WriteOnceSlots<T> {
        WriteOnceSlots {
            #[cfg(debug_assertions)]
            written: slots.iter().map(|_| AtomicBool::new(false)).collect(),
            slots: slots.into_iter().map(UnsafeCell::new).collect(),
        }
    }

    /// Number of slots.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Grants mutable access to slot `index`.
    ///
    /// # Contract
    ///
    /// Each index must be passed by at most one concurrent caller over
    /// the structure's lifetime (kernel item `i` writes slot `i`).
    /// Violations are caught by a panic in debug builds.
    pub fn with_mut(&self, index: usize, f: impl FnOnce(&mut T)) {
        #[cfg(debug_assertions)]
        assert!(
            !self.written[index].swap(true, Ordering::AcqRel),
            "write-once slot {index} written twice"
        );
        // SAFETY: the write-once contract makes this the only reference.
        f(unsafe { &mut *self.slots[index].get() });
    }

    /// Reclaims the slot vector after the kernel launch completed.
    pub fn into_inner(self) -> Vec<T> {
        self.slots.into_iter().map(UnsafeCell::into_inner).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn shard_pool_recycles_capacity() {
        let pool = ShardPool::new(4, 7, 3);
        let mut shards = pool.take(2);
        shards[0].buffers[1].extend_from_slice(b"abcdef");
        shards[0].counts[1] = (1, 3);
        let cap = shards[0].buffers[1].capacity();
        assert_eq!(shards[0].staged_bytes(), 6);
        assert_eq!(shards[0].staged_superkmers(), 1);
        pool.put(shards);
        let again = pool.take(2);
        // Cleared but capacity retained on the recycled shard.
        assert!(again.iter().all(|s| s.staged_bytes() == 0));
        assert!(again.iter().any(|s| s.buffers[1].capacity() == cap));
        pool.put(again);
    }

    #[test]
    fn worker_shards_are_mutually_exclusive() {
        let pool = ShardPool::new(1, 5, 2);
        let roster = WorkerShards::new(pool.take(4));
        let max_seen = AtomicUsize::new(0);
        let live = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for i in 0..500 {
                        let mut g = roster.checkout();
                        let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                        max_seen.fetch_max(now, Ordering::SeqCst);
                        g.buffers[0].push(i as u8);
                        g.counts[0].0 += 1;
                        live.fetch_sub(1, Ordering::SeqCst);
                        drop(g);
                    }
                });
            }
        });
        assert!(max_seen.load(Ordering::SeqCst) <= 4, "more holders than shards");
        let shards = roster.into_shards();
        let total: u64 = shards.iter().map(StagingShard::staged_superkmers).sum();
        assert_eq!(total, 8 * 500, "no emit lost");
        let bytes: u64 = shards.iter().map(StagingShard::staged_bytes).sum();
        assert_eq!(bytes, 8 * 500);
    }

    #[test]
    fn write_once_slots_collect_parallel_results() {
        let slots = WriteOnceSlots::new(vec![0usize; 64]);
        std::thread::scope(|s| {
            for t in 0..4 {
                let slots = &slots;
                s.spawn(move || {
                    for i in (t..64).step_by(4) {
                        slots.with_mut(i, |v| *v = i * 10);
                    }
                });
            }
        });
        assert_eq!(slots.len(), 64);
        let out = slots.into_inner();
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * 10));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "written twice")]
    fn write_once_double_write_panics_in_debug() {
        let slots = WriteOnceSlots::new(vec![0u8; 1]);
        slots.with_mut(0, |_| {});
        slots.with_mut(0, |_| {});
    }
}
