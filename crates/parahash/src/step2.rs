use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

use hashgraph::{
    table_capacity_for, ContentionStats, DeBruijnGraph, HashGraphError, ReplayKernel, SubGraph,
    TablePool, VertexTable,
};
use hetsim::{Device, DeviceKind};
use msp::{
    PartitionManifest, PartitionSlices, QuarantinedPartition, SealedPartition, SealedPayload,
};
use parking_lot::Mutex;
use pipeline::{
    failpoint, run_coprocessed_streaming_steered, run_coprocessed_with, CancelToken,
    PipelineReport, SharedCounterQueue, SplitTuner, ThrottledIo, TunerWarmStart,
};

use crate::journal::{JournalEvent, RunJournal};
use crate::once_error::OnceError;
use crate::report::CoprocSummary;
use crate::step1::{device_baselines, device_deltas, split_device_times};
use crate::{ParaHashConfig, ParaHashError, Result, StepReport};

/// Output of one Step-2 compute launch. `None` marks a partition whose
/// failure was already recorded (fatal error or quarantine) — the output
/// stage must neither absorb nor persist it.
struct Part2Out {
    subgraph: SubGraph,
    contention: ContentionStats,
    resizes: usize,
}

/// Bytes per vertex in the serialised subgraph format (4 × u64 key words,
/// count, 8 edge counters).
const VERTEX_BYTES: usize = 32 + 4 + 32;

/// Hard cap on the out-of-core sub-partition fanout. A tiny table budget
/// against a huge partition would otherwise ask for thousands of
/// sub-buffers whose per-sub framing and bookkeeping dwarf the split's
/// benefit; past this point each sub-table simply runs over budget (the
/// split is best-effort, never recursive — see
/// [`Step2Shared::build_split`]).
const MAX_SUB_FANOUT: usize = 256;

/// Serialises a subgraph to the on-disk format: little-endian,
/// fixed-width records preceded by a u64 count and a u8 k, followed by a
/// u32 CRC32 trailer over everything before it (so bit-rot in a persisted
/// subgraph is detected on reload, mirroring the partition-file frames).
///
/// Records are written in **canonical (sorted-by-k-mer) order**, not the
/// hash table's slot order: slot order depends on insertion interleaving
/// under multithreaded construction, and the crash-recovery guarantee is
/// that a resumed run's subgraph files are *byte-identical* to an
/// uninterrupted run's — only a canonical order survives that comparison.
pub fn encode_subgraph(sub: &SubGraph) -> Vec<u8> {
    let mut entries: Vec<&(dna::Kmer, hashgraph::VertexData)> = sub.entries().iter().collect();
    entries.sort_by_key(|(kmer, _)| *kmer);
    let mut out = Vec::with_capacity(9 + entries.len() * VERTEX_BYTES + 4);
    out.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    out.push(sub.k() as u8);
    for (kmer, data) in entries {
        for w in kmer.words() {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out.extend_from_slice(&data.count.to_le_bytes());
        for e in &data.edges {
            out.extend_from_slice(&e.to_le_bytes());
        }
    }
    let crc = msp::crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Parses the format written by [`encode_subgraph`]. Used by tests and by
/// downstream consumers of persisted subgraphs.
///
/// Returns `None` when the buffer is truncated, fails its CRC32 trailer,
/// declares an invalid k-mer, or carries trailing bytes beyond the
/// declared record count — a short count with appended garbage is
/// corruption, not a smaller subgraph. When the caller needs to know
/// *why* a buffer was rejected, use [`decode_subgraph_checked`].
pub fn decode_subgraph(bytes: &[u8]) -> Option<SubGraph> {
    decode_subgraph_checked(bytes, None).ok()
}

/// [`decode_subgraph`] with a diagnosable error instead of `None`.
///
/// The error names the partition the subgraph belongs to (when the
/// caller supplies it), the byte offset at which the problem was
/// detected, and classifies the damage:
///
/// * **truncated tail** — the buffer ends before the bytes its header
///   promises; the expected signature of a crash mid-write (impossible
///   for files written through the atomic commit protocol, but persisted
///   subgraphs may come from elsewhere).
/// * **interior corruption** — the length bookkeeping is intact but the
///   content is not (CRC32 trailer mismatch, invalid k-mer, undeclared
///   trailing bytes): bit-rot or tampering, not a torn write.
///
/// # Errors
///
/// [`ParaHashError::Msp`] wrapping [`msp::MspError::CorruptRecord`] with
/// the offset and classification above.
pub fn decode_subgraph_checked(bytes: &[u8], partition: Option<usize>) -> Result<SubGraph> {
    let bad = |offset: usize, fault: &str, detail: String| -> ParaHashError {
        let whose = match partition {
            Some(i) => format!("subgraph for partition {i}, "),
            None => String::new(),
        };
        ParaHashError::Msp(msp::MspError::CorruptRecord {
            offset: offset as u64,
            reason: format!("{whose}byte {offset}: {fault} — {detail}"),
        })
    };
    // u64 count + u8 k + u32 crc is the minimum (empty) encoding.
    if bytes.len() < 9 + 4 {
        return Err(bad(
            bytes.len(),
            "truncated tail",
            format!("{} bytes is shorter than the minimal (13-byte) empty encoding", bytes.len()),
        ));
    }
    let n = u64::from_le_bytes(bytes[..8].try_into().unwrap()) as usize;
    let k = bytes[8] as usize;
    let expected = 9usize.saturating_add(n.saturating_mul(VERTEX_BYTES)).saturating_add(4);
    if bytes.len() < expected {
        return Err(bad(
            bytes.len(),
            "truncated tail",
            format!(
                "header declares {n} record(s) ({expected} bytes total) but the buffer holds {}",
                bytes.len()
            ),
        ));
    }
    if bytes.len() > expected {
        return Err(bad(
            expected,
            "interior corruption",
            format!("{} byte(s) beyond the declared {n} record(s)", bytes.len() - expected),
        ));
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes(trailer.try_into().unwrap());
    let computed = msp::crc32(body);
    if computed != stored {
        return Err(bad(
            body.len(),
            "interior corruption",
            format!("CRC32 trailer mismatch (stored {stored:#010x}, computed {computed:#010x})"),
        ));
    }
    let mut offset = 9;
    let mut entries = Vec::with_capacity(n);
    for rec in 0..n {
        let record_start = offset;
        let mut words = [0u64; 4];
        for w in &mut words {
            *w = u64::from_le_bytes(body[offset..offset + 8].try_into().unwrap());
            offset += 8;
        }
        let kmer = dna::Kmer::from_words(words, k).map_err(|e| {
            bad(record_start, "interior corruption", format!("record {rec}: invalid k-mer: {e}"))
        })?;
        let count = u32::from_le_bytes(body[offset..offset + 4].try_into().unwrap());
        offset += 4;
        let mut edges = [0u32; 8];
        for e in &mut edges {
            *e = u32::from_le_bytes(body[offset..offset + 4].try_into().unwrap());
            offset += 4;
        }
        entries.push((kmer, hashgraph::VertexData { count, edges }));
    }
    Ok(SubGraph::new(k, entries))
}

/// Step 2 of ParaHash: pipelined, co-processed subgraph construction.
///
/// Each superkmer partition is read from disk (checksummed frames are
/// verified in place), decoded, and replayed into a
/// [`ConcurrentDbgTable`] sized by the Property-1 rule from the
/// manifest's per-partition k-mer count. On a GPU device, the encoded
/// partition pays the host→device transfer and the table reserves device
/// memory; the snapshot pays the device→host transfer.
///
/// Failure handling is two-tier:
///
/// * **Strict mode** (the default): the first fatal error cancels the
///   pipeline — remaining partitions are abandoned, partial subgraph
///   output is deleted, and the error is returned.
/// * **Non-strict mode**
///   ([`strict(false)`](crate::ParaHashConfigBuilder::strict)): a
///   partition whose file
///   cannot be read (after [`pipeline::RetryPolicy`] retries) or fails
///   its checksums is *quarantined* — recorded in the manifest and the
///   step report — and the run completes without its k-mers. Device and
///   hash-table failures stay fatal in both modes: they indicate the run
///   environment, not one bad file.
///
/// Returns the merged De Bruijn graph and the step report.
///
/// # Errors
///
/// Propagates partition-file corruption, I/O failures, and device-memory
/// exhaustion (the first two only in strict mode).
pub fn run_step2(
    config: &ParaHashConfig,
    manifest: &PartitionManifest,
    io: &ThrottledIo,
) -> Result<(DeBruijnGraph, StepReport)> {
    run_step2_with(config, manifest, io, None, &BTreeSet::new())
}

/// [`run_step2`] with crash-recovery hooks: an optional [`RunJournal`]
/// that receives a `subgraph-committed` record after every atomic
/// subgraph commit (and `quarantined` records at the end), and a `skip`
/// set of partitions whose subgraphs were already committed by an
/// interrupted run — they flow through the pipeline as no-ops and the
/// resume driver absorbs their persisted subgraphs instead.
pub(crate) fn run_step2_with(
    config: &ParaHashConfig,
    manifest: &PartitionManifest,
    io: &ThrottledIo,
    journal: Option<&RunJournal>,
    skip: &BTreeSet<usize>,
) -> Result<(DeBruijnGraph, StepReport)> {
    let n = manifest.num_partitions();
    let cancel = CancelToken::new();
    let shared = Step2Shared::new(config, &cancel, journal)?;
    let mut graph = DeBruijnGraph::new(config.k);

    let pipeline_report = {
        let shared = &shared;
        let graph = &mut graph;
        run_coprocessed_with(
            n,
            config.devices(),
            &cancel,
            // Stage 1: load a partition file (pays input I/O, with
            // transient-error retries inside `ThrottledIo`). `None` is
            // the sentinel for an already-recorded failure — or, on a
            // resumed run, for a partition whose subgraph is already
            // committed and will be absorbed from disk by the driver.
            |i| {
                if skip.contains(&i) {
                    return None;
                }
                match io.read_file(manifest.partition_path(i)) {
                    Ok(bytes) => Some(bytes),
                    Err(e) => {
                        shared.partition_failed(i, ParaHashError::Io(e));
                        None
                    }
                }
            },
            // Stage 2: hash-construct the subgraph on an idle device.
            |device: &dyn Device, idx, bytes: Option<Vec<u8>>| {
                let Some(bytes) = bytes else {
                    return (None, 0);
                };
                shared.build(device, idx, &bytes, manifest.stats()[idx].kmers)
            },
            // Stage 3: absorb (and optionally persist) the subgraph.
            |idx, out: Option<Part2Out>| shared.consume(io, graph, idx, out),
        )
    };

    let (graph, report) = shared.finish(pipeline_report, graph, None)?;
    if !report.quarantined.is_empty() || !report.sub_splits.is_empty() {
        // Persist the quarantine and sub-split marks so any later
        // consumer of the partition directory knows which subgraphs are
        // missing and which were built out of core.
        let mut marked = manifest.clone();
        for q in &report.quarantined {
            marked.quarantine(q.index, q.reason.clone());
        }
        for &(i, fanout) in &report.sub_splits {
            marked.set_sub_split(i, fanout);
        }
        marked.save()?;
    }
    Ok((graph, report))
}

/// Streaming Step 2 for the fused pipeline: partitions arrive as
/// [`SealedPartition`]s over a [`SharedCounterQueue`] as Step 1 seals
/// them, instead of being enumerated from a finished manifest. Resident
/// payloads skip the disk entirely; spilled payloads are read back with
/// the usual retry policy. Shares all failure semantics with
/// [`run_step2`], except quarantine marks are *not* persisted here — the
/// fused driver owns the manifest and records them after the run.
///
/// Dispatch is **model-driven**: a [`SplitTuner`] executing the
/// configured [`crate::ParaHashConfigBuilder::split`] policy routes each
/// arriving partition to the CPU or GPU device class, feeding its rolling
/// `T_cpu`/`T_gpu`/`T_io` measurements back into the §IV model as the
/// stream progresses. `warm` seeds the tuner from a previous run's
/// journaled state so a resume starts at the converged split. The
/// tuner's final state is reported in [`StepReport::coproc`].
///
/// The caller is responsible for closing `feed` (abort) or finishing it
/// (end of stream); a fatal error in here cancels the shared token, which
/// the Step-1 side must observe.
///
/// # Errors
///
/// Same as [`run_step2`].
pub(crate) fn run_step2_streaming(
    config: &ParaHashConfig,
    feed: &SharedCounterQueue<SealedPartition>,
    io: &ThrottledIo,
    cancel: &CancelToken,
    journal: Option<&RunJournal>,
    skip: &BTreeSet<usize>,
    warm: Option<TunerWarmStart>,
) -> Result<(DeBruijnGraph, StepReport)> {
    let shared = Step2Shared::new(config, cancel, journal)?;
    let mut graph = DeBruijnGraph::new(config.k);
    let n_gpus =
        config.devices().iter().filter(|d| d.kind() == DeviceKind::SimGpu).count();
    let tuner = SplitTuner::new(config.split, n_gpus, warm);

    let pipeline_report = {
        let shared = &shared;
        let graph = &mut graph;
        run_coprocessed_streaming_steered(
            feed,
            config.devices(),
            cancel,
            &tuner,
            // Stage 1: materialise the sealed payload. Resident bytes are
            // handed over by value — the fused win: no disk round-trip.
            // A partition in the resume `skip` set flows through as a
            // no-op; its committed subgraph is absorbed by the driver.
            |sealed: SealedPartition| {
                let idx = sealed.index;
                if skip.contains(&idx) {
                    return (idx, None);
                }
                let kmers = sealed.kmers;
                let bytes = match sealed.payload {
                    SealedPayload::Resident(bytes) => Some(bytes),
                    SealedPayload::Spilled(path) => match io.read_file(&path) {
                        Ok(bytes) => Some(bytes),
                        Err(e) => {
                            shared.partition_failed(idx, ParaHashError::Io(e));
                            None
                        }
                    },
                };
                (idx, bytes.map(|b| (b, kmers)))
            },
            // Stage 2: identical hash construction to the two-phase path.
            |device: &dyn Device, idx, input: Option<(Vec<u8>, u64)>| {
                let Some((bytes, kmers)) = input else {
                    return (None, 0);
                };
                shared.build(device, idx, &bytes, kmers)
            },
            |idx, out: Option<Part2Out>| shared.consume(io, graph, idx, out),
        )
    };
    shared.finish(pipeline_report, graph, Some(&tuner))
}

/// The machinery both Step-2 entry points share: failure routing
/// (fatal-vs-quarantine), the pooled capacity-retry hash construction,
/// subgraph absorption/persistence, and report assembly.
struct Step2Shared<'a> {
    config: &'a ParaHashConfig,
    cancel: &'a CancelToken,
    /// Recycles table allocations across partitions (and across the
    /// capacity-retry rebuilds): the alloc+zero churn of one fresh
    /// `ConcurrentDbgTable` per partition becomes a handful of
    /// allocations total, because partition sizes cluster into a few
    /// capacity classes.
    pool: TablePool,
    total_contention: Mutex<ContentionStats>,
    total_resizes: AtomicUsize,
    peak_table: AtomicU64,
    peak_partition: AtomicU64,
    first_error: OnceError<ParaHashError>,
    quarantined: Mutex<Vec<QuarantinedPartition>>,
    /// `(partition, fanout)` for every partition whose projected table
    /// busted [`table_memory_budget`](crate::ParaHashConfigBuilder::table_memory_budget)
    /// and was built out of core through second-level sub-partitions.
    sub_splits: Mutex<Vec<(usize, usize)>>,
    sub_dir: PathBuf,
    /// When set, every durable state change (subgraph committed,
    /// partition quarantined) is appended to the run journal so a
    /// crashed run can be resumed without redoing the work.
    journal: Option<&'a RunJournal>,
    /// The replay dispatcher, built once per step: word-parallel
    /// single-`u64` fast path for k ≤ 32, scalar cursor otherwise (and
    /// under `PARAHASH_FORCE_SCALAR`, captured at construction).
    kernel: ReplayKernel,
    /// Device-metric snapshots taken at the *first* compute launch (not
    /// at construction): in the fused flow this struct exists while
    /// Step 1 still owns the shared device roster, but Step 2's first
    /// build strictly follows Step 1's last device call — so a lazy
    /// baseline fences Step 1's meters out of this step's window.
    baselines: OnceLock<Vec<hetsim::DeviceMetrics>>,
}

impl<'a> Step2Shared<'a> {
    fn new(
        config: &'a ParaHashConfig,
        cancel: &'a CancelToken,
        journal: Option<&'a RunJournal>,
    ) -> Result<Step2Shared<'a>> {
        let sub_dir = config.work_dir.join("subgraphs");
        if config.write_subgraphs {
            std::fs::create_dir_all(&sub_dir)?;
        }
        Ok(Step2Shared {
            config,
            cancel,
            journal,
            pool: TablePool::new(config.k),
            total_contention: Mutex::new(ContentionStats::default()),
            total_resizes: AtomicUsize::new(0),
            peak_table: AtomicU64::new(0),
            peak_partition: AtomicU64::new(0),
            first_error: OnceError::new(),
            quarantined: Mutex::new(Vec::new()),
            sub_splits: Mutex::new(Vec::new()),
            sub_dir,
            kernel: ReplayKernel::new(config.k),
            baselines: OnceLock::new(),
        })
    }

    /// The first *fatal* error cancels the whole pipeline so remaining
    /// partitions are abandoned instead of processed to completion.
    fn fatal(&self, e: ParaHashError) {
        self.first_error.set(e);
        self.cancel.cancel();
    }

    /// Partition-local failures (unreadable or corrupt file) either abort
    /// (strict) or set the partition aside and keep going.
    fn partition_failed(&self, idx: usize, e: ParaHashError) {
        if self.config.strict {
            self.fatal(e);
        } else {
            self.quarantined
                .lock()
                .push(QuarantinedPartition { index: idx, reason: e.to_string() });
        }
    }

    /// The compute stage: admit the partition against the per-table
    /// memory budget, then hash-construct — in one table when the
    /// Property-1 projection fits, or out of core through second-level
    /// sub-partitions when it does not.
    fn build(
        &self,
        device: &dyn Device,
        idx: usize,
        bytes: &[u8],
        n_kmers: u64,
    ) -> (Option<Part2Out>, u64) {
        self.baselines.get_or_init(|| device_baselines(self.config));
        self.peak_partition.fetch_max(bytes.len() as u64, Ordering::Relaxed);
        let projected = hashgraph::projected_table_bytes(n_kmers, self.config.sizing);
        let budget = self.config.table_memory_budget;
        if projected > budget {
            if !self.config.out_of_core {
                self.fatal(ParaHashError::TableOverBudget {
                    partition: idx,
                    projected_bytes: projected,
                    budget,
                });
                return (None, 0);
            }
            return self.build_split(device, idx, bytes, projected);
        }
        match self.build_one_table(device, idx, bytes, n_kmers) {
            Some((subgraph, contention, resizes)) => {
                let work = subgraph.len() as u64;
                (Some(Part2Out { subgraph, contention, resizes }), work)
            }
            None => (None, 0),
        }
    }

    /// Out-of-core build of one over-budget partition: split its records
    /// by the second-level minimizer hash ([`msp::split_framed`]), build
    /// each sub-partition with its own budget-sized table (one live at a
    /// time — that is the point), and concatenate the sub-entries. The
    /// sub-tables are key-disjoint because every copy of a k-mer shares a
    /// minimizer, so the merged entry set — and after the canonical sort
    /// in [`encode_subgraph`], the persisted bytes — is identical to the
    /// unsplit build's.
    ///
    /// The fanout is `ceil(projected / budget)`, clamped to
    /// [`MAX_SUB_FANOUT`]; splitting happens **exactly once** (sub-builds
    /// are never re-admitted against the budget), because a single
    /// minimizer's load is the atomic unit of routing — a sub-partition
    /// that is still over budget (one pathologically hot minimizer, or a
    /// fanout clamped by the cap) builds with an over-budget table rather
    /// than recursing forever.
    fn build_split(
        &self,
        device: &dyn Device,
        idx: usize,
        bytes: &[u8],
        projected: u64,
    ) -> (Option<Part2Out>, u64) {
        let fanout = projected
            .div_ceil(self.config.table_memory_budget.max(1))
            .clamp(2, MAX_SUB_FANOUT as u64) as usize;
        let subs = match msp::split_framed(bytes, self.config.k, self.config.p, fanout, idx) {
            Ok(subs) => subs,
            Err(e) => {
                self.partition_failed(idx, e.into());
                return (None, 0);
            }
        };
        self.sub_splits.lock().push((idx, fanout));
        if let Some(journal) = self.journal {
            if let Err(e) = journal.append(&JournalEvent::SubSplit(idx, fanout)) {
                self.fatal(e);
                return (None, 0);
            }
        }
        let mut entries = Vec::new();
        let mut contention = ContentionStats::default();
        let mut resizes = 0usize;
        for sub in &subs {
            if sub.superkmers == 0 {
                continue;
            }
            let Some((subgraph, sub_contention, sub_resizes)) =
                self.build_one_table(device, idx, &sub.bytes, sub.kmers)
            else {
                return (None, 0);
            };
            contention.merge(&sub_contention);
            resizes += sub_resizes;
            entries.extend(subgraph.into_entries());
        }
        let subgraph = SubGraph::new(self.config.k, entries);
        let work = subgraph.len() as u64;
        (Some(Part2Out { subgraph, contention, resizes }), work)
    }

    /// One table build: index the framed bytes once, then hash-construct
    /// with pooled tables, retrying with a bigger checkout if the
    /// Property-1 estimate under-sized the table. `None` means the
    /// failure was already routed through
    /// [`partition_failed`](Self::partition_failed) / [`fatal`](Self::fatal).
    fn build_one_table(
        &self,
        device: &dyn Device,
        idx: usize,
        bytes: &[u8],
        n_kmers: u64,
    ) -> Option<(SubGraph, ContentionStats, usize)> {
        let transfer_in = bytes.len() as u64;
        // Zero-copy decode of the framed bytes: verify every frame's
        // CRC32 once, index the record boundaries, then replay borrowed
        // `SuperkmerView`s straight out of the partition buffer — no
        // per-record heap allocation. Indexing happens once, *outside*
        // the capacity-retry loop — a retry re-reads nothing and
        // re-verifies nothing, it only swaps in a bigger table.
        let slices = match PartitionSlices::index_framed(bytes, self.config.k, self.config.p) {
            Ok(slices) => slices,
            Err(e) => {
                self.partition_failed(idx, e.into());
                return None;
            }
        };
        let mut capacity = table_capacity_for(n_kmers, self.config.sizing);
        let mut resizes = 0usize;
        loop {
            // Checked out from the pool: a recycled allocation when one
            // of this capacity class is shelved, a fresh one otherwise.
            // Dropping the guard (every exit path below) shelves it.
            let table = self.pool.checkout(capacity);
            let table_bytes = table.approx_bytes() as u64;
            self.peak_table.fetch_max(table_bytes, Ordering::Relaxed);
            let is_gpu = device.kind() == DeviceKind::SimGpu;
            if is_gpu {
                if let Err(e) = device.alloc(table_bytes) {
                    self.fatal(e.into());
                    return None;
                }
                device.transfer_to_device(transfer_in);
            }
            // The kernel: one superkmer per data-parallel item, decoded
            // in place from the partition buffer. Each worker's chunk is
            // replayed through one software-pipelined [`ReplayPipeline`],
            // so the slot-prefetch lookahead spans superkmer boundaries.
            // The `OnceError` check lets surviving chunks bail out
            // cheaply once any item has failed.
            let kernel_error: OnceError<HashGraphError> = OnceError::new();
            device.execute_chunks(slices.len(), &|range| {
                let mut pipe = hashgraph::ReplayPipeline::new(self.kernel, &*table);
                for i in range {
                    if kernel_error.is_set() {
                        return;
                    }
                    if let Err(e) = pipe.record_view(&slices.view(i)) {
                        kernel_error.set(e);
                        return;
                    }
                }
                if let Err(e) = pipe.flush() {
                    kernel_error.set(e);
                }
            });
            match kernel_error.into_inner() {
                None => {
                    let subgraph = table.snapshot();
                    if is_gpu {
                        device.transfer_from_device((subgraph.len() * VERTEX_BYTES) as u64);
                        device.free(table_bytes);
                    }
                    return Some((subgraph, table.contention(), resizes));
                }
                Some(HashGraphError::CapacityExhausted { .. }) => {
                    if is_gpu {
                        device.free(table_bytes);
                    }
                    resizes += 1;
                    // Double from the capacity actually granted (the pool
                    // rounds up to its class), so the retry is guaranteed
                    // a strictly larger class.
                    capacity = table.capacity().saturating_mul(2).max(32);
                }
                Some(e) => {
                    if is_gpu {
                        device.free(table_bytes);
                    }
                    self.fatal(e.into());
                    return None;
                }
            }
        }
    }

    /// The output stage: absorb (and optionally persist) the subgraph.
    /// Failure sentinels are skipped outright — an error partition must
    /// never leave a bogus `sub-XXXXX.dbg` behind or leak empty entries
    /// into the merged graph.
    fn consume(
        &self,
        io: &ThrottledIo,
        graph: &mut DeBruijnGraph,
        idx: usize,
        out: Option<Part2Out>,
    ) {
        let Some(out) = out else {
            return;
        };
        self.total_contention.lock().merge(&out.contention);
        self.total_resizes.fetch_add(out.resizes, Ordering::Relaxed);
        if self.config.write_subgraphs {
            let bytes = encode_subgraph(&out.subgraph);
            let path = self.sub_dir.join(format!("sub-{idx:05}.dbg"));
            // Atomic commit (tmp + fsync + rename + dir fsync): a crash
            // anywhere in here leaves either no `sub-XXXXX.dbg` or a
            // complete, checksummed one — never a torn file.
            let committed = failpoint::hit("step2.subgraph.write")
                .and_then(|()| io.commit_file(&path, &bytes));
            if let Err(e) = committed {
                self.partition_failed(idx, ParaHashError::Io(e));
                return; // quarantined partitions stay out of the graph
            }
            // The journal record is written strictly *after* the rename:
            // `subgraph-committed` in the journal implies the file is
            // durable and whole. (The converse is allowed — a file with
            // no record is simply re-verified or redone on resume.)
            if let Some(journal) = self.journal {
                if let Err(e) = journal.append(&JournalEvent::SubgraphCommitted(idx)) {
                    self.fatal(e);
                    return;
                }
            }
        }
        graph.absorb(out.subgraph);
    }

    /// Turns the accumulated counters into the step report — or, on the
    /// abort path, deletes partial subgraph output and surfaces the first
    /// fatal error.
    fn finish(
        self,
        pipeline_report: PipelineReport,
        graph: DeBruijnGraph,
        tuner: Option<&SplitTuner>,
    ) -> Result<(DeBruijnGraph, StepReport)> {
        let quarantined = self.quarantined.into_inner();
        // Compute-stage completion order is nondeterministic under
        // multithreading; the report (and everything derived from it,
        // like manifest marks) must not be.
        let mut sub_splits = self.sub_splits.into_inner();
        sub_splits.sort_unstable();
        if let Some(e) = self.first_error.into_inner() {
            // Abort path: whatever subgraph files were persisted describe
            // a partial run — delete them so nothing downstream mistakes
            // them for a complete graph.
            if self.config.write_subgraphs {
                let _ = std::fs::remove_dir_all(&self.sub_dir);
            }
            return Err(e);
        }
        // Quarantine marks are durable state too: record them so a
        // resumed run knows these partitions were *examined and set
        // aside*, not merely unprocessed.
        if let Some(journal) = self.journal {
            for q in &quarantined {
                journal.append(&JournalEvent::Quarantined(q.index, q.reason.clone()))?;
            }
        }
        let deltas = match self.baselines.get() {
            Some(baselines) => device_deltas(self.config, baselines),
            // No partition ever reached the compute stage: the step did
            // no device work, so its window is empty.
            None => Vec::new(),
        };
        let (cpu_compute, gpu_compute) =
            split_device_times(self.config, &pipeline_report.shares, &deltas);
        // Per-class partition counts come from the shares (ground truth of
        // what each device actually processed), the split target and
        // regime from the tuner's rolling measurements.
        let coproc = tuner.map(|t| {
            let snap = t.snapshot();
            let mut cpu_partitions = 0;
            let mut gpu_partitions = 0;
            for (device, share) in self.config.devices().iter().zip(&pipeline_report.shares) {
                match device.kind() {
                    DeviceKind::Cpu => cpu_partitions += share.partitions,
                    DeviceKind::SimGpu => gpu_partitions += share.partitions,
                }
            }
            CoprocSummary {
                policy: t.policy().to_string(),
                cpu_partitions,
                gpu_partitions,
                gpu_share: snap.gpu_share,
                regime: snap.regime,
            }
        });
        let report = StepReport {
            step: 2,
            pipeline: pipeline_report,
            cpu_compute,
            gpu_compute,
            contention: Some(self.total_contention.into_inner()),
            step1_stats: None,
            resizes: self.total_resizes.into_inner(),
            peak_partition_bytes: self.peak_partition.into_inner(),
            peak_table_bytes: self.peak_table.into_inner(),
            peak_resident_store_bytes: 0,
            quarantined,
            sub_splits,
            coproc,
            exhausted_leases: Vec::new(),
        };
        Ok((graph, report))
    }
}

/// What [`build_and_commit_partition`] measured while building one
/// partition — the payload of a shard worker's `result` wire message.
pub(crate) struct StandaloneOutcome {
    /// Capacity-retry rebuilds this partition needed.
    pub resizes: usize,
    /// Peak hash-table bytes (the largest sub-table when split).
    pub peak_table_bytes: u64,
    /// Out-of-core fanout: 0 when the partition fit its budget and was
    /// built in one table, ≥ 2 when it was sub-partitioned.
    pub fanout: usize,
}

/// Builds **one** partition end to end — read, budget-admit (splitting
/// out of core if projected over budget), hash-construct, and commit the
/// encoded subgraph as `subgraphs/sub-<idx>.dbg` — outside any pipeline.
/// This is the unit of work a shard worker executes per lease: the
/// committed file *is* the result channel back to the parent, so the
/// caller's config must have `write_subgraphs` forced on, and `strict`
/// on so every failure surfaces as an error (the parent owns
/// quarantine policy, not the worker).
///
/// # Errors
///
/// Any read, frame, device, or commit failure for this partition.
pub(crate) fn build_and_commit_partition(
    config: &ParaHashConfig,
    idx: usize,
    path: &std::path::Path,
    n_kmers: u64,
    io: &ThrottledIo,
    journal: Option<&RunJournal>,
) -> Result<StandaloneOutcome> {
    debug_assert!(config.strict && config.write_subgraphs);
    let cancel = CancelToken::new();
    let shared = Step2Shared::new(config, &cancel, journal)?;
    let bytes = io.read_file(path).map_err(ParaHashError::Io)?;
    let (out, _) = shared.build(config.devices()[0].as_ref(), idx, &bytes, n_kmers);
    let mut graph = DeBruijnGraph::new(config.k);
    shared.consume(io, &mut graph, idx, out);
    if let Some(e) = shared.first_error.into_inner() {
        return Err(e);
    }
    let splits = shared.sub_splits.into_inner();
    Ok(StandaloneOutcome {
        resizes: shared.total_resizes.into_inner(),
        peak_table_bytes: shared.peak_table.into_inner(),
        fanout: splits.first().map_or(0, |&(_, f)| f),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_step1;
    use dna::SeqRead;
    use pipeline::IoMode;

    fn reads() -> Vec<SeqRead> {
        vec![
            SeqRead::from_ascii("a", b"ACGTTGCATGGACCAGTTACGGATCAGGCATT"),
            SeqRead::from_ascii("b", b"TGATGGATGATGGATGGTAGCATACGTTGCAT"),
            SeqRead::from_ascii("c", b"GGCATTAGCCAGTACGGATCACCGTATGCAAT"),
        ]
    }

    fn config(dir: &str) -> ParaHashConfig {
        ParaHashConfig::builder()
            .k(7)
            .p(4)
            .partitions(6)
            .cpu_threads(2)
            .work_dir(std::env::temp_dir().join(dir))
            .build()
            .unwrap()
    }

    fn reference(reads: &[SeqRead], k: usize) -> DeBruijnGraph {
        let seqs: Vec<dna::PackedSeq> = reads.iter().map(|r| r.seq().clone()).collect();
        let parts = msp::partition_in_memory(&seqs, k, 4, 1).unwrap();
        let mut g = DeBruijnGraph::new(k);
        g.absorb(hashgraph::build_subgraph_serial(&parts[0], k).unwrap());
        g
    }

    #[test]
    fn step2_reconstructs_reference_graph() {
        let cfg = config("parahash-step2-ref");
        let _ = std::fs::remove_dir_all(cfg.work_dir());
        let io = ThrottledIo::new(IoMode::Unthrottled);
        let rs = reads();
        let (manifest, _) = run_step1(&cfg, &rs, &io).unwrap();
        let (graph, report) = run_step2(&cfg, &manifest, &io).unwrap();
        assert_eq!(graph, reference(&rs, 7));
        assert_eq!(report.step, 2);
        assert_eq!(report.pipeline.partitions, 6);
        let c = report.contention.unwrap();
        assert_eq!(c.operations(), manifest.total_kmers());
        std::fs::remove_dir_all(cfg.work_dir()).unwrap();
    }

    #[test]
    fn step2_with_gpu_pays_transfers_and_memory() {
        let cfg = ParaHashConfig::builder()
            .k(7)
            .p(4)
            .partitions(4)
            .no_cpu()
            .sim_gpu(hetsim::SimGpuConfig::default())
            .work_dir(std::env::temp_dir().join("parahash-step2-gpu"))
            .build()
            .unwrap();
        let _ = std::fs::remove_dir_all(cfg.work_dir());
        let io = ThrottledIo::new(IoMode::Unthrottled);
        let rs = reads();
        let (manifest, _) = run_step1(&cfg, &rs, &io).unwrap();
        let (graph, _) = run_step2(&cfg, &manifest, &io).unwrap();
        assert_eq!(graph, reference(&rs, 7));
        let m = cfg.devices()[0].metrics();
        assert!(m.bytes_to_device > 0);
        assert!(m.bytes_from_device > 0);
        assert!(m.peak_memory > 0, "hash tables must reserve device memory");
        std::fs::remove_dir_all(cfg.work_dir()).unwrap();
    }

    #[test]
    fn subgraph_encoding_roundtrips() {
        let cfg = config("parahash-step2-enc");
        let _ = std::fs::remove_dir_all(cfg.work_dir());
        let io = ThrottledIo::new(IoMode::Unthrottled);
        let (manifest, _) = run_step1(&cfg, &reads(), &io).unwrap();
        let (graph, _) = run_step2(&cfg, &manifest, &io).unwrap();
        // Round-trip the whole graph as one subgraph.
        let entries: Vec<_> = graph.iter().map(|(k, v)| (*k, *v)).collect();
        let sub = SubGraph::new(7, entries);
        let decoded = decode_subgraph(&encode_subgraph(&sub)).unwrap();
        let mut a = sub.into_entries();
        let mut b = decoded.into_entries();
        a.sort_by_key(|x| x.0);
        b.sort_by_key(|x| x.0);
        assert_eq!(a, b);
        std::fs::remove_dir_all(cfg.work_dir()).unwrap();
    }

    #[test]
    fn decode_rejects_truncated_input() {
        assert!(decode_subgraph(&[]).is_none());
        assert!(decode_subgraph(&[1, 0, 0, 0, 0, 0, 0, 0, 7]).is_none(), "promises 1 entry, has none");
        // Promises 1 entry, has none, but carries a (valid) CRC trailer.
        let mut short = vec![1u8, 0, 0, 0, 0, 0, 0, 0, 7];
        let crc = msp::crc32(&short);
        short.extend_from_slice(&crc.to_le_bytes());
        assert!(decode_subgraph(&short).is_none());
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let cfg = config("parahash-step2-trailing");
        let _ = std::fs::remove_dir_all(cfg.work_dir());
        let io = ThrottledIo::new(IoMode::Unthrottled);
        let (manifest, _) = run_step1(&cfg, &reads(), &io).unwrap();
        let (graph, _) = run_step2(&cfg, &manifest, &io).unwrap();
        let entries: Vec<_> = graph.iter().map(|(k, v)| (*k, *v)).collect();
        assert!(entries.len() >= 2, "need several records for this test");
        let sub = SubGraph::new(7, entries.clone());
        let encoded = encode_subgraph(&sub);
        assert!(decode_subgraph(&encoded).is_some(), "sanity: clean input decodes");

        // (a) Appended garbage breaks the CRC trailer.
        let mut appended = encoded.clone();
        appended.extend_from_slice(b"junk");
        assert!(decode_subgraph(&appended).is_none(), "appended bytes must be rejected");

        // (b) The adversarial case the CRC alone cannot catch: decrement
        // the record count and *recompute a valid trailer*, so the file
        // checksums cleanly but carries one whole record of trailing
        // bytes. Only the `offset == body.len()` check rejects this.
        let mut body = encoded[..encoded.len() - 4].to_vec();
        let n = u64::from_le_bytes(body[..8].try_into().unwrap());
        body[..8].copy_from_slice(&(n - 1).to_le_bytes());
        let crc = msp::crc32(&body);
        body.extend_from_slice(&crc.to_le_bytes());
        assert!(
            decode_subgraph(&body).is_none(),
            "undeclared trailing record must be rejected even with a valid CRC"
        );
        std::fs::remove_dir_all(cfg.work_dir()).unwrap();
    }

    #[test]
    fn non_strict_run_quarantines_corrupt_partition() {
        let cfg = ParaHashConfig::builder()
            .k(7)
            .p(4)
            .partitions(6)
            .cpu_threads(2)
            .strict(false)
            .work_dir(std::env::temp_dir().join("parahash-step2-quarantine"))
            .build()
            .unwrap();
        let _ = std::fs::remove_dir_all(cfg.work_dir());
        let io = ThrottledIo::new(IoMode::Unthrottled);
        let rs = reads();
        let (manifest, _) = run_step1(&cfg, &rs, &io).unwrap();
        // Flip one payload byte in the largest partition: the frame
        // checksum catches it and the partition is set aside.
        let victim = (0..manifest.num_partitions())
            .max_by_key(|&i| manifest.stats()[i].bytes)
            .unwrap();
        let path = manifest.partition_path(victim);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = msp::FRAME_HEADER_LEN + (bytes.len() - msp::FRAME_HEADER_LEN) / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();

        let (graph, report) = run_step2(&cfg, &manifest, &io).unwrap();
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.quarantined[0].index, victim);
        assert!(
            report.quarantined[0].reason.contains("checksum mismatch"),
            "{}",
            report.quarantined[0].reason
        );
        // The graph is missing exactly the victim's k-mers.
        let full = reference(&rs, 7);
        assert!(graph.total_kmer_occurrences() < full.total_kmer_occurrences());
        assert_eq!(
            graph.total_kmer_occurrences(),
            manifest.total_kmers() - manifest.stats()[victim].kmers
        );
        // The quarantine mark was persisted into the manifest on disk.
        let reloaded = PartitionManifest::load(manifest.dir()).unwrap();
        assert!(reloaded.is_quarantined(victim));
        assert_eq!(reloaded.quarantined().len(), 1);
        std::fs::remove_dir_all(cfg.work_dir()).unwrap();
    }

    #[test]
    fn strict_abort_deletes_partial_subgraph_output() {
        let cfg = ParaHashConfig::builder()
            .k(7)
            .p(4)
            .partitions(6)
            .cpu_threads(1)
            .write_subgraphs(true)
            .work_dir(std::env::temp_dir().join("parahash-step2-abortclean"))
            .build()
            .unwrap();
        let _ = std::fs::remove_dir_all(cfg.work_dir());
        let io = ThrottledIo::new(IoMode::Unthrottled);
        let (manifest, _) = run_step1(&cfg, &reads(), &io).unwrap();
        let victim = (0..manifest.num_partitions())
            .max_by_key(|&i| manifest.stats()[i].bytes)
            .unwrap();
        let path = manifest.partition_path(victim);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.truncate(bytes.len() - 1);
        std::fs::write(&path, &bytes).unwrap();

        assert!(run_step2(&cfg, &manifest, &io).is_err());
        let sub_dir = cfg.work_dir().join("subgraphs");
        assert!(
            !sub_dir.exists(),
            "aborted run must not leave partial subgraph files behind"
        );
        std::fs::remove_dir_all(cfg.work_dir()).unwrap();
    }

    #[test]
    fn write_subgraphs_persists_files() {
        let cfg = ParaHashConfig::builder()
            .k(7)
            .p(4)
            .partitions(3)
            .cpu_threads(1)
            .write_subgraphs(true)
            .work_dir(std::env::temp_dir().join("parahash-step2-persist"))
            .build()
            .unwrap();
        let _ = std::fs::remove_dir_all(cfg.work_dir());
        let io = ThrottledIo::new(IoMode::Unthrottled);
        let (manifest, _) = run_step1(&cfg, &reads(), &io).unwrap();
        let (graph, _) = run_step2(&cfg, &manifest, &io).unwrap();
        // Reload all persisted subgraphs; their union is the graph.
        let mut reloaded = DeBruijnGraph::new(7);
        for i in 0..3 {
            let bytes = std::fs::read(cfg.work_dir().join("subgraphs").join(format!("sub-{i:05}.dbg"))).unwrap();
            reloaded.absorb(decode_subgraph(&bytes).unwrap());
        }
        assert_eq!(reloaded, graph);
        std::fs::remove_dir_all(cfg.work_dir()).unwrap();
    }

    #[test]
    fn corrupt_partition_file_surfaces_error() {
        let cfg = config("parahash-step2-corrupt");
        let _ = std::fs::remove_dir_all(cfg.work_dir());
        let io = ThrottledIo::new(IoMode::Unthrottled);
        let (manifest, _) = run_step1(&cfg, &reads(), &io).unwrap();
        // Truncate the largest partition file mid-record.
        let victim = (0..manifest.num_partitions())
            .max_by_key(|&i| manifest.stats()[i].bytes)
            .unwrap();
        let path = manifest.partition_path(victim);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.truncate(bytes.len() - 1);
        std::fs::write(&path, &bytes).unwrap();
        assert!(run_step2(&cfg, &manifest, &io).is_err());
        std::fs::remove_dir_all(cfg.work_dir()).unwrap();
    }
}
