use std::time::Duration;

use hashgraph::ContentionStats;
use pipeline::perfmodel::{self, Regime, StepComponents};
use pipeline::PipelineReport;

/// Step-1 emit-path counters: how much work the sharded staging layer
/// moved and how often the output stage flushed staged bytes into the
/// partition writer. The Step-1 analogue of Step 2's
/// [`ContentionStats`] — cheap (tallied once per batch on the output
/// stage, never on the per-superkmer emit path) and useful for spotting
/// skew: `staging_bytes / merge_flushes` is the mean flush size, and a
/// `merge_flushes` near `batches × partitions` means every batch touched
/// every partition (dense routing), while far fewer means sparse batches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Step1Stats {
    /// Superkmers emitted across all batches.
    pub superkmers: u64,
    /// K-mer occurrences covered by those superkmers.
    pub kmers: u64,
    /// Encoded bytes staged by workers and merged into partition files.
    pub staging_bytes: u64,
    /// Non-empty per-partition buffer drains performed by the output
    /// stage (each is one bulk `append_encoded` call).
    pub merge_flushes: u64,
    /// Compute batches that reached the output stage.
    pub batches: u64,
    /// Input bases consumed (sequence characters parsed and scanned).
    /// Divided by Step 1's elapsed time this is the ingest throughput.
    pub bases: u64,
}

/// How the model-driven scheduler split one step's partitions between
/// the device classes — recorded by the steered (fused Step-2) path,
/// `None` on the classic work-stealing paths.
#[derive(Debug, Clone, PartialEq)]
pub struct CoprocSummary {
    /// The split policy that ran (`auto`, `static:<frac>`, `cpu`).
    pub policy: String,
    /// Partitions processed by CPU-class devices.
    pub cpu_partitions: usize,
    /// Partitions processed by GPU-class devices.
    pub gpu_partitions: usize,
    /// The tuner's final GPU work-share target.
    pub gpu_share: f64,
    /// The regime the tuner's rolling measurements classified into.
    pub regime: Regime,
}

impl std::fmt::Display for CoprocSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let regime = match self.regime {
            Regime::ComputeBound => "compute-bound",
            Regime::IoBound => "io-bound",
            Regime::Mixed => "mixed",
        };
        write!(
            f,
            "coproc: {} partitions cpu / {} gpu, split {} (target {:.2}), regime {}",
            self.cpu_partitions, self.gpu_partitions, self.policy, self.gpu_share, regime
        )
    }
}

/// Timing and accounting of one pipelined step.
#[derive(Debug, Clone)]
pub struct StepReport {
    /// Which step this is (1 = MSP, 2 = hashing).
    pub step: u8,
    /// The scheduler's run report (elapsed, stage times, device shares).
    pub pipeline: PipelineReport,
    /// Sum of CPU-device busy time.
    pub cpu_compute: Duration,
    /// Max of GPU-device busy time (includes metered transfers), 0 when
    /// no GPU ran.
    pub gpu_compute: Duration,
    /// Step-2 only: aggregated hash table contention counters.
    pub contention: Option<ContentionStats>,
    /// Step-1 only: sharded-staging emit/merge counters.
    pub step1_stats: Option<Step1Stats>,
    /// Step-2 only: how many tables had to be rebuilt bigger.
    pub resizes: usize,
    /// Peak in-flight partition buffer bytes: the largest loaded
    /// partition file (Step 2) or input batch (Step 1).
    pub peak_partition_bytes: u64,
    /// Step-2 only: peak single-partition hash table bytes (0 in Step 1,
    /// which allocates no tables). Kept separate from
    /// [`peak_partition_bytes`](Self::peak_partition_bytes) because the
    /// buffer and the table coexist during a launch — host-memory
    /// accounting must *add* them, not take the max.
    pub peak_table_bytes: u64,
    /// Fused mode only: peak bytes held by the resident
    /// [`msp::PartitionStore`] during Step 1 (0 in two-phase runs and in
    /// Step-2 reports). Resident partitions coexist with the in-flight
    /// batch and, later, with Step-2's tables — host-memory accounting
    /// must *add* this component.
    pub peak_resident_store_bytes: u64,
    /// Partitions set aside after repeated failures instead of aborting
    /// the run (non-strict mode only; always empty in strict mode).
    pub quarantined: Vec<msp::QuarantinedPartition>,
    /// Step-2 only: `(partition, fanout)` for every partition whose
    /// projected Property-1 table busted
    /// [`table_memory_budget`](crate::ParaHashConfigBuilder::table_memory_budget)
    /// and was built out of core through second-level sub-partitions.
    /// Sorted by partition index (the build order is nondeterministic
    /// under multithreading; the report is not).
    pub sub_splits: Vec<(usize, usize)>,
    /// Model-driven dispatch accounting when the steered scheduler ran
    /// this step (fused Step 2); `None` on the work-stealing paths.
    pub coproc: Option<CoprocSummary>,
    /// Sharded Step 2 only: partitions whose leases burned every worker
    /// attempt — who held the last lease, how many attempts, and the
    /// final failure reason. Empty on non-sharded paths and on healthy
    /// sharded runs. In strict mode exhaustion aborts instead, so this
    /// is only ever populated alongside
    /// [`quarantined`](Self::quarantined) entries.
    pub exhausted_leases: Vec<pipeline::shard::ExhaustedLease>,
}

impl StepReport {
    /// The measured components in the shape the §IV model consumes.
    pub fn components(&self) -> StepComponents {
        StepComponents {
            cpu_compute: self.cpu_compute,
            gpu: self.gpu_compute,
            input: self.pipeline.input_time,
            output: self.pipeline.output_time,
            partitions: self.pipeline.partitions,
        }
    }

    /// Eq.-1 estimate for this step from its own measured components.
    pub fn eq1_estimate(&self) -> Duration {
        perfmodel::eq1_step_time(&self.components())
    }

    /// Which regime (Case 1 / Case 2 / mixed) the step ran in.
    pub fn regime(&self) -> Regime {
        perfmodel::classify_regime(&self.components())
    }

    /// Ratio of real elapsed time to the Eq.-1 estimate (1.0 = the model
    /// is exact; Figs 13–14 report this agreement).
    pub fn model_accuracy(&self) -> f64 {
        let est = self.eq1_estimate().as_secs_f64();
        if est == 0.0 {
            return 1.0;
        }
        self.pipeline.elapsed.as_secs_f64() / est
    }
}

/// Full-run accounting: both steps plus graph-level statistics.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Step 1 (MSP partitioning).
    pub step1: StepReport,
    /// Step 2 (hash construction).
    pub step2: StepReport,
    /// End-to-end wall-clock including the inter-step barrier.
    pub total_elapsed: Duration,
    /// Distinct vertices in the final graph.
    pub distinct_vertices: usize,
    /// Total k-mer occurrences merged.
    pub total_kmers: u64,
    /// Approximate peak host memory: the final graph plus the largest
    /// in-flight table/batch (ParaHash never holds the whole input).
    pub peak_host_bytes: u64,
    /// Total superkmer partition bytes written and re-read.
    pub partition_bytes: u64,
}

impl RunReport {
    /// Sum of both steps' elapsed times.
    pub fn steps_elapsed(&self) -> Duration {
        self.step1.pipeline.elapsed + self.step2.pipeline.elapsed
    }

    /// Duplicate vertices (total occurrences − distinct).
    pub fn duplicate_vertices(&self) -> u64 {
        self.total_kmers - self.distinct_vertices as u64
    }

    /// Partitions quarantined across both steps (in practice only Step 2
    /// quarantines; Step 1 failures abort before a manifest exists).
    pub fn quarantined_partitions(&self) -> usize {
        self.step1.quarantined.len() + self.step2.quarantined.len()
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "step1 {:.3}s + step2 {:.3}s = {:.3}s | {} distinct vertices, {} kmers, {} partition bytes, ~{} MiB peak",
            self.step1.pipeline.elapsed.as_secs_f64(),
            self.step2.pipeline.elapsed.as_secs_f64(),
            self.total_elapsed.as_secs_f64(),
            self.distinct_vertices,
            self.total_kmers,
            self.partition_bytes,
            self.peak_host_bytes >> 20,
        );
        if let Some(coproc) = &self.step2.coproc {
            s.push_str(&format!(" | {coproc}"));
        }
        if let Some(stats) = &self.step1.step1_stats {
            if stats.bases > 0 {
                let secs = self.step1.pipeline.elapsed.as_secs_f64();
                let rate = if secs > 0.0 { stats.bases as f64 / secs } else { 0.0 };
                s.push_str(&format!(
                    " | ingest {} bases @ {:.1} Mbases/s",
                    stats.bases,
                    rate / 1e6,
                ));
            }
        }
        let q = self.quarantined_partitions();
        if q > 0 {
            s.push_str(&format!(" | {q} partition(s) QUARANTINED — graph is incomplete"));
        }
        for x in &self.step2.exhausted_leases {
            s.push_str(&format!(
                " | partition {} exhausted {} lease attempt(s) (last holder worker {}): {}",
                x.partition, x.attempts, x.worker, x.reason
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipeline::DeviceShare;

    fn fake_step(cpu_ms: u64, gpu_ms: u64, in_ms: u64, out_ms: u64, n: usize) -> StepReport {
        StepReport {
            step: 1,
            pipeline: PipelineReport {
                elapsed: Duration::from_millis(cpu_ms.max(gpu_ms).max(in_ms)),
                input_time: Duration::from_millis(in_ms),
                output_time: Duration::from_millis(out_ms),
                shares: vec![DeviceShare {
                    name: "cpu0".into(),
                    partitions: n,
                    work_units: 100,
                    busy: Duration::from_millis(cpu_ms),
                }],
                partitions: n,
                spans: Vec::new(),
                cancelled: false,
            },
            cpu_compute: Duration::from_millis(cpu_ms),
            gpu_compute: Duration::from_millis(gpu_ms),
            contention: None,
            step1_stats: None,
            resizes: 0,
            peak_partition_bytes: 0,
            peak_table_bytes: 0,
            peak_resident_store_bytes: 0,
            quarantined: Vec::new(),
            sub_splits: Vec::new(),
            coproc: None,
            exhausted_leases: Vec::new(),
        }
    }

    #[test]
    fn components_mirror_measurements() {
        let s = fake_step(100, 50, 10, 5, 4);
        let c = s.components();
        assert_eq!(c.cpu_compute, Duration::from_millis(100));
        assert_eq!(c.gpu, Duration::from_millis(50));
        assert_eq!(c.partitions, 4);
        assert!(s.eq1_estimate() >= Duration::from_millis(100));
        assert_eq!(s.regime(), Regime::ComputeBound);
    }

    #[test]
    fn model_accuracy_near_one_when_exact() {
        let s = fake_step(100, 0, 1, 1, 100);
        let acc = s.model_accuracy();
        assert!(acc > 0.9 && acc < 1.1, "accuracy {acc}");
    }

    #[test]
    fn run_report_aggregates() {
        let r = RunReport {
            step1: fake_step(10, 0, 1, 1, 2),
            step2: fake_step(20, 0, 1, 1, 2),
            total_elapsed: Duration::from_millis(35),
            distinct_vertices: 10,
            total_kmers: 50,
            peak_host_bytes: 4 << 20,
            partition_bytes: 1234,
        };
        assert_eq!(r.duplicate_vertices(), 40);
        assert!(r.steps_elapsed() <= r.total_elapsed);
        let s = r.summary();
        assert!(s.contains("10 distinct"));
        assert!(s.contains("1234 partition bytes"));
        assert!(!s.contains("QUARANTINED"), "healthy runs stay quiet: {s}");
    }

    #[test]
    fn summary_reports_ingest_throughput() {
        let mut r = RunReport {
            step1: fake_step(10, 0, 1, 1, 2),
            step2: fake_step(20, 0, 1, 1, 2),
            total_elapsed: Duration::from_millis(35),
            distinct_vertices: 10,
            total_kmers: 50,
            peak_host_bytes: 4 << 20,
            partition_bytes: 1234,
        };
        assert!(!r.summary().contains("ingest"), "no stats, no ingest line");
        r.step1.step1_stats = Some(Step1Stats { bases: 2_000_000, ..Default::default() });
        let s = r.summary();
        assert!(s.contains("ingest 2000000 bases @"), "{s}");
        assert!(s.contains("Mbases/s"), "{s}");
    }

    #[test]
    fn summary_reports_coproc_split() {
        let mut r = RunReport {
            step1: fake_step(10, 0, 1, 1, 2),
            step2: fake_step(20, 0, 1, 1, 2),
            total_elapsed: Duration::from_millis(35),
            distinct_vertices: 10,
            total_kmers: 50,
            peak_host_bytes: 4 << 20,
            partition_bytes: 1234,
        };
        assert!(!r.summary().contains("coproc"), "no steered run, no coproc line");
        r.step2.coproc = Some(CoprocSummary {
            policy: "auto".into(),
            cpu_partitions: 3,
            gpu_partitions: 5,
            gpu_share: 0.6,
            regime: Regime::ComputeBound,
        });
        let s = r.summary();
        assert!(
            s.contains("coproc: 3 partitions cpu / 5 gpu, split auto (target 0.60), regime compute-bound"),
            "{s}"
        );
    }

    #[test]
    fn summary_flags_quarantined_partitions() {
        let mut r = RunReport {
            step1: fake_step(10, 0, 1, 1, 2),
            step2: fake_step(20, 0, 1, 1, 2),
            total_elapsed: Duration::from_millis(35),
            distinct_vertices: 10,
            total_kmers: 50,
            peak_host_bytes: 4 << 20,
            partition_bytes: 1234,
        };
        r.step2.quarantined.push(msp::QuarantinedPartition {
            index: 1,
            reason: "checksum mismatch after 3 attempts".into(),
        });
        assert_eq!(r.quarantined_partitions(), 1);
        let s = r.summary();
        assert!(s.contains("1 partition(s) QUARANTINED"), "{s}");
    }

    #[test]
    fn summary_names_exhausted_leases() {
        let mut r = RunReport {
            step1: fake_step(10, 0, 1, 1, 2),
            step2: fake_step(20, 0, 1, 1, 2),
            total_elapsed: Duration::from_millis(35),
            distinct_vertices: 10,
            total_kmers: 50,
            peak_host_bytes: 4 << 20,
            partition_bytes: 1234,
        };
        assert!(!r.summary().contains("exhausted"), "healthy runs stay quiet");
        r.step2.exhausted_leases.push(pipeline::shard::ExhaustedLease {
            partition: 3,
            worker: 1,
            attempts: 2,
            reason: "sent no heartbeat within 600ms; evicted as hung".into(),
        });
        let s = r.summary();
        assert!(
            s.contains(
                "partition 3 exhausted 2 lease attempt(s) (last holder worker 1): \
                 sent no heartbeat within 600ms; evicted as hung"
            ),
            "{s}"
        );
    }
}
