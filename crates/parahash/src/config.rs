use std::path::PathBuf;
use std::sync::Arc;

use hashgraph::SizingParams;
use hetsim::{CpuDevice, Device, SimGpuConfig, SimGpuDevice};
use pipeline::{IoMode, RetryPolicy, SplitPolicy};

use crate::Result;

/// A specific configuration rule violated at
/// [`ParaHashConfigBuilder::build`] time. Each variant names the
/// offending values and the rule, so the rejection is actionable
/// instead of surfacing later as a panic or debug assertion deep in the
/// pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `k` is zero or exceeds the packed-word maximum [`dna::MAX_K`].
    KOutOfRange {
        /// The rejected k-mer length.
        k: usize,
    },
    /// The minimizer length must satisfy `1 <= p <= k`: a minimizer is
    /// a substring of the k-mer, so `p > k` has no substring to
    /// minimise over and `p == 0` selects nothing. (`p == k` is legal —
    /// the minimizer is the whole canonical k-mer, every k-mer becomes
    /// its own superkmer — just slow.)
    MinimizerNotShorter {
        /// The rejected minimizer length.
        p: usize,
        /// The k-mer length it was checked against.
        k: usize,
    },
    /// `partitions` must be at least 1.
    NoPartitions,
    /// No `work_dir` was provided.
    MissingWorkDir,
    /// The device roster ended up empty (`no_cpu()` without any GPU or
    /// extra device).
    NoDevices,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::KOutOfRange { k } => {
                write!(f, "k={k} out of range 1..={} (packed-word maximum)", dna::MAX_K)
            }
            ConfigError::MinimizerNotShorter { p, k } => write!(
                f,
                "p={p} must satisfy 1 <= p <= k (k={k}): minimizers are substrings of k-mers"
            ),
            ConfigError::NoPartitions => write!(f, "partitions must be >= 1"),
            ConfigError::MissingWorkDir => write!(f, "work_dir is required"),
            ConfigError::NoDevices => write!(f, "at least one compute device is required"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Complete configuration of a ParaHash run. Construct through
/// [`ParaHashConfig::builder`].
#[derive(Clone)]
pub struct ParaHashConfig {
    pub(crate) k: usize,
    pub(crate) p: usize,
    pub(crate) partitions: usize,
    pub(crate) sizing: SizingParams,
    pub(crate) read_batch_bytes: usize,
    pub(crate) io_mode: IoMode,
    pub(crate) work_dir: PathBuf,
    pub(crate) write_subgraphs: bool,
    pub(crate) auto_lambda: Option<usize>,
    pub(crate) strict: bool,
    pub(crate) retry: RetryPolicy,
    pub(crate) indexed_fastq: bool,
    pub(crate) partition_memory_budget: u64,
    pub(crate) table_memory_budget: u64,
    pub(crate) out_of_core: bool,
    pub(crate) workers: usize,
    /// TCP listen address for the sharded Step 2 (`None` = Unix socket
    /// in the work directory). `host:0` binds an ephemeral port. With a
    /// listen address the parent also accepts *remote* workers
    /// (`dbg worker --connect <addr>`) beyond its spawned children.
    pub(crate) listen: Option<String>,
    /// Argv passed to the self-exec'ed worker processes of the sharded
    /// Step 2 (after the program path). Empty for production binaries
    /// whose `main` calls [`crate::worker_from_env`] first; test binaries
    /// set it to route the child into their worker-entry test.
    pub(crate) worker_args: Vec<String>,
    pub(crate) resume: bool,
    pub(crate) split: SplitPolicy,
    pub(crate) devices: Vec<Arc<dyn Device>>,
    /// Run-scope token for long-lived staging files; set by the system
    /// entry points from the run fingerprint, empty until then.
    pub(crate) run_token: String,
    /// Input digest of the run's fingerprint; set alongside
    /// [`run_token`](Self::run_token) by the system entry points so the
    /// sharded Step 2 can embed the full fingerprint in worker journals.
    /// Zero until then.
    pub(crate) input_digest: u64,
}

impl std::fmt::Debug for ParaHashConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParaHashConfig")
            .field("k", &self.k)
            .field("p", &self.p)
            .field("partitions", &self.partitions)
            .field("devices", &self.devices.iter().map(|d| d.name().to_owned()).collect::<Vec<_>>())
            .field("io_mode", &self.io_mode)
            .field("work_dir", &self.work_dir)
            .finish()
    }
}

impl ParaHashConfig {
    /// Starts a builder with the paper's defaults: K = 27, P = 11,
    /// 64 partitions (paper default 512, scaled with the mini datasets),
    /// λ = 2, α = 0.65, unthrottled I/O, one CPU device using all
    /// available cores, no GPUs.
    pub fn builder() -> ParaHashConfigBuilder {
        ParaHashConfigBuilder::default()
    }

    /// The k-mer length.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The minimizer length.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Number of superkmer partitions.
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// The configured devices.
    pub fn devices(&self) -> &[Arc<dyn Device>] {
        &self.devices
    }

    /// The working directory for partition files.
    pub fn work_dir(&self) -> &std::path::Path {
        &self.work_dir
    }

    /// The I/O regime.
    pub fn io_mode(&self) -> IoMode {
        self.io_mode
    }

    /// Whether a persistently failing partition aborts the run (`true`,
    /// the default) or is quarantined (`false`).
    pub fn strict(&self) -> bool {
        self.strict
    }

    /// The transient-I/O retry policy applied to partition reads/writes.
    pub fn retry(&self) -> RetryPolicy {
        self.retry
    }

    /// Whether [`crate::run_step1_fastq`] uses the two-pass indexed
    /// batching (`true`) instead of the default single-pass streaming cut
    /// (`false`).
    pub fn indexed_fastq(&self) -> bool {
        self.indexed_fastq
    }

    /// Byte budget for resident partitions in the fused pipeline (see
    /// [`ParaHashConfigBuilder::partition_memory_budget`]).
    pub fn partition_memory_budget(&self) -> u64 {
        self.partition_memory_budget
    }

    /// Byte budget for one partition's Property-1 hash table (see
    /// [`ParaHashConfigBuilder::table_memory_budget`]).
    pub fn table_memory_budget(&self) -> u64 {
        self.table_memory_budget
    }

    /// Whether over-budget partitions are sub-partitioned out of core
    /// (see [`ParaHashConfigBuilder::out_of_core`]).
    pub fn out_of_core(&self) -> bool {
        self.out_of_core
    }

    /// Number of Step-2 worker processes (see
    /// [`ParaHashConfigBuilder::workers`]); `0` = in-process Step 2.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// TCP listen address of the sharded Step 2, when TCP transport was
    /// requested (see [`ParaHashConfigBuilder::listen`]).
    pub fn listen(&self) -> Option<&str> {
        self.listen.as_deref()
    }

    /// Whether runs should resume from the work directory's `run.journal`
    /// when one exists (see [`ParaHashConfigBuilder::resume`]).
    pub fn resume(&self) -> bool {
        self.resume
    }

    /// The CPU/GPU split policy steering the fused Step-2 stream (see
    /// [`ParaHashConfigBuilder::split`]).
    pub fn split(&self) -> SplitPolicy {
        self.split
    }
}

/// Builder for [`ParaHashConfig`].
///
/// # Examples
///
/// ```
/// use parahash::ParaHashConfig;
/// use hetsim::SimGpuConfig;
///
/// # fn main() -> Result<(), parahash::ParaHashError> {
/// let config = ParaHashConfig::builder()
///     .k(27)
///     .p(11)
///     .partitions(128)
///     .cpu_threads(8)
///     .sim_gpu(SimGpuConfig::default())
///     .sim_gpu(SimGpuConfig::default())
///     .work_dir("/tmp/parahash-run")
///     .build()?;
/// assert_eq!(config.devices().len(), 3); // cpu + 2 gpus
/// # Ok(())
/// # }
/// ```
pub struct ParaHashConfigBuilder {
    k: usize,
    p: usize,
    partitions: usize,
    sizing: SizingParams,
    read_batch_bytes: usize,
    io_mode: IoMode,
    work_dir: Option<PathBuf>,
    write_subgraphs: bool,
    auto_lambda: Option<usize>,
    strict: bool,
    retry: RetryPolicy,
    indexed_fastq: bool,
    partition_memory_budget: u64,
    table_memory_budget: u64,
    out_of_core: bool,
    workers: usize,
    listen: Option<String>,
    worker_args: Vec<String>,
    resume: bool,
    split: Option<SplitPolicy>,
    cpu_threads: Option<usize>,
    gpus: Vec<SimGpuConfig>,
    extra_devices: Vec<Arc<dyn Device>>,
}

impl Default for ParaHashConfigBuilder {
    fn default() -> ParaHashConfigBuilder {
        ParaHashConfigBuilder {
            k: 27,
            p: 11,
            partitions: 64,
            sizing: SizingParams::default(),
            read_batch_bytes: 1 << 20,
            io_mode: IoMode::Unthrottled,
            work_dir: None,
            write_subgraphs: false,
            auto_lambda: None,
            strict: true,
            retry: RetryPolicy::default(),
            indexed_fastq: false,
            partition_memory_budget: 256 << 20, // 256 MiB resident by default
            table_memory_budget: u64::MAX,      // unlimited: never sub-partition
            out_of_core: true,
            workers: 0,
            listen: None,
            worker_args: Vec::new(),
            resume: false,
            split: None,
            cpu_threads: Some(0), // 0 = all available
            gpus: Vec::new(),
            extra_devices: Vec::new(),
        }
    }
}

impl ParaHashConfigBuilder {
    /// Sets the k-mer length (1..=[`dna::MAX_K`]).
    pub fn k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Sets the minimizer length (1..=k).
    pub fn p(mut self, p: usize) -> Self {
        self.p = p;
        self
    }

    /// Sets the number of superkmer partitions.
    pub fn partitions(mut self, n: usize) -> Self {
        self.partitions = n;
        self
    }

    /// Sets the Property-1 sizing parameters (λ, α).
    pub fn sizing(mut self, sizing: SizingParams) -> Self {
        self.sizing = sizing;
        self
    }

    /// Sets the approximate byte size of one Step-1 input batch (the
    /// "equal-size input partitions" of Fig 3).
    pub fn read_batch_bytes(mut self, bytes: usize) -> Self {
        self.read_batch_bytes = bytes.max(1);
        self
    }

    /// Sets the I/O regime (unthrottled = Case 1; a bandwidth cap = Case 2).
    pub fn io_mode(mut self, mode: IoMode) -> Self {
        self.io_mode = mode;
        self
    }

    /// Sets the directory for superkmer partition files (required).
    pub fn work_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.work_dir = Some(dir.into());
        self
    }

    /// Persist each constructed subgraph to `work_dir/subgraphs/` (off by
    /// default; the comparison methodology in §V-A excludes this write).
    pub fn write_subgraphs(mut self, yes: bool) -> Self {
        self.write_subgraphs = yes;
        self
    }

    /// Estimates Property-1's λ from the first `sample` reads' FASTQ
    /// quality strings at run time (Σ 10^(−Q/10) per read, averaged) and
    /// sizes hash tables with it, instead of the static
    /// [`sizing`](Self::sizing) λ. Reads without quality leave the static
    /// value in force.
    pub fn auto_sizing(mut self, sample: usize) -> Self {
        self.auto_lambda = Some(sample.max(1));
        self
    }

    /// Strict mode (`true`, the default): the first unrecoverable
    /// partition failure aborts the whole run. Non-strict mode
    /// quarantines the failing partition in the manifest instead and
    /// finishes the run without its k-mers — the paper's workloads
    /// (terabyte read sets on shared clusters) often prefer a flagged
    /// partial graph over losing a multi-hour run.
    pub fn strict(mut self, yes: bool) -> Self {
        self.strict = yes;
        self
    }

    /// Sets the retry policy for transient partition-file I/O failures
    /// (defaults to [`RetryPolicy::default`]: 3 attempts with exponential
    /// backoff). Use [`RetryPolicy::none`] to fail on the first error.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Makes [`crate::run_step1_fastq`] run a two-pass *indexed* batching:
    /// a pre-pass counts records per batch, then the pipeline re-reads the
    /// file. The default (`false`) is the single-pass streaming cut, which
    /// reads the file exactly once. The indexed mode exists for
    /// byte-budget-exact batch cuts on storage where a second sequential
    /// scan is cheaper than slightly uneven batches.
    pub fn indexed_fastq(mut self, yes: bool) -> Self {
        self.indexed_fastq = yes;
        self
    }

    /// Sets the byte budget for **resident** partitions in the fused
    /// pipeline ([`crate::run_fused`] / [`crate::run_fused_fastq`]):
    /// Step-1 partitions accumulate in memory until the budget is
    /// exceeded, then the largest are spilled to the usual partition
    /// files. `0` forces every partition to disk (the classic two-phase
    /// data path, still fused in time); a huge budget keeps the whole
    /// Step-1→Step-2 handoff off the disk. Default: 256 MiB. The
    /// two-phase entry points ([`crate::run_step1`] + [`crate::run_step2`])
    /// ignore this setting.
    pub fn partition_memory_budget(mut self, bytes: u64) -> Self {
        self.partition_memory_budget = bytes;
        self
    }

    /// Sets the byte budget for a single partition's Property-1 hash
    /// table in Step 2. A partition whose projected table
    /// ([`hashgraph::projected_table_bytes`] from its manifest k-mer
    /// count) exceeds this budget is split by a second-level minimizer
    /// hash into sub-partitions, each built with its own (budget-sized)
    /// table and merged — byte-identical to the unsplit build. The
    /// default (`u64::MAX`) never splits. With
    /// [`out_of_core(false)`](Self::out_of_core), an over-budget
    /// partition aborts the run with
    /// [`crate::ParaHashError::TableOverBudget`] instead.
    pub fn table_memory_budget(mut self, bytes: u64) -> Self {
        self.table_memory_budget = bytes;
        self
    }

    /// Enables (`true`, the default) or disables out-of-core
    /// sub-partitioning of partitions whose projected table exceeds
    /// [`table_memory_budget`](Self::table_memory_budget). When disabled,
    /// an over-budget partition is a hard
    /// [`crate::ParaHashError::TableOverBudget`] error — the pre-PR-9
    /// behaviour of any run that outgrew its memory.
    pub fn out_of_core(mut self, yes: bool) -> Self {
        self.out_of_core = yes;
        self
    }

    /// Runs Step 2 across `n` child **worker processes** instead of in
    /// process: the parent runs Step 1, seals the partitions, then
    /// spawns `n` self-exec'ed workers that claim partitions
    /// largest-first over a Unix-socket protocol, build subgraphs
    /// locally (each with its own journal), and commit them to
    /// `work_dir/subgraphs/`; the parent verifies and absorbs the
    /// committed files and reassigns the leases of any worker that dies.
    /// `0` (the default) keeps the classic in-process Step 2. Applies to
    /// the two-phase flows ([`crate::ParaHash::run`]); the fused
    /// pipeline ignores it. The process `main` (or test harness entry)
    /// of the spawned binary must call [`crate::worker_from_env`] before
    /// doing anything else — see
    /// [`worker_spawn_args`](Self::worker_spawn_args).
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Serves the sharded Step 2 over **TCP** at `addr` (for example
    /// `0.0.0.0:7700`, or `127.0.0.1:0` to pick a free loopback port)
    /// instead of the default Unix socket. Spawned child workers connect
    /// to the resolved address like remote ones would; additional
    /// machines join with `dbg worker --connect <addr>` and get their
    /// partition payloads shipped over the wire (and ship their subgraph
    /// results back). Implies the sharded Step 2 even when
    /// [`workers`](Self::workers) is `0` — a listen-only parent waits
    /// (bounded by `PARAHASH_SHARD_WAIT_MS`) for remote workers and
    /// falls back to the in-process build if none show up.
    pub fn listen(mut self, addr: impl Into<String>) -> Self {
        self.listen = Some(addr.into());
        self
    }

    /// Extra argv for the self-exec'ed worker processes. Production
    /// binaries need none (their `main` calls [`crate::worker_from_env`]
    /// unconditionally); test binaries pass
    /// `["<worker-entry-test>", "--exact", "--nocapture"]` so the libtest
    /// harness routes the child into the test function that hosts the
    /// worker loop — the `tests/crash_recovery.rs` self-exec idiom.
    pub fn worker_spawn_args<I, S>(mut self, args: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.worker_args = args.into_iter().map(Into::into).collect();
        self
    }

    /// Makes the run entry points ([`crate::ParaHash::run`] /
    /// [`run_fused`](crate::ParaHash::run_fused) and the FASTQ variants)
    /// resume from `work_dir/run.journal` when one exists: the journal
    /// is replayed, surviving artifacts are CRC-verified, committed
    /// subgraphs are reloaded instead of rebuilt, and only
    /// missing/invalid partitions are re-run. A journal written under a
    /// different config/input fingerprint is refused with
    /// [`crate::ParaHashError::FingerprintMismatch`]. Equivalent to
    /// calling [`crate::ParaHash::resume`] explicitly. Off by default —
    /// a fresh run truncates any previous journal.
    pub fn resume(mut self, yes: bool) -> Self {
        self.resume = yes;
        self
    }

    /// Sets the CPU/GPU split policy for the fused Step-2 stream:
    /// [`SplitPolicy::Auto`] (the default) lets the online tuner steer the
    /// partition split toward the Eq. 2 optimum from rolling
    /// `T_cpu`/`T_gpu`/`T_io` measurements; `SplitPolicy::Static(f)` pins
    /// the GPU share to `f` (the `--split static:<frac>` escape hatch that
    /// proves autotuned ≡ static byte-identical); `SplitPolicy::CpuOnly`
    /// disables offload without changing the roster. When this method is
    /// not called, the `PARAHASH_SPLIT` environment variable
    /// (`cpu` / `auto` / `static:<frac>`) is honoured before falling back
    /// to `Auto` — an unparsable value is ignored. Rosters without a GPU
    /// degenerate to CPU-only dispatch under every policy. The two-phase
    /// entry points keep the paper's dynamic work stealing and ignore
    /// this setting.
    pub fn split(mut self, policy: SplitPolicy) -> Self {
        self.split = Some(policy);
        self
    }

    /// Uses a CPU device with `threads` workers (0 = all available cores).
    /// This is the default; call [`no_cpu`](Self::no_cpu) for GPU-only runs.
    pub fn cpu_threads(mut self, threads: usize) -> Self {
        self.cpu_threads = Some(threads);
        self
    }

    /// Removes the CPU compute device (GPU-only configurations; the host
    /// still runs the input/output stages, as in the paper).
    pub fn no_cpu(mut self) -> Self {
        self.cpu_threads = None;
        self
    }

    /// Adds one simulated GPU.
    pub fn sim_gpu(mut self, config: SimGpuConfig) -> Self {
        self.gpus.push(config);
        self
    }

    /// Adds a pre-built device (e.g. a custom [`Device`] implementation).
    pub fn device(mut self, device: Arc<dyn Device>) -> Self {
        self.extra_devices.push(device);
        self
    }

    /// Validates and builds the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ParaHashError::Config`] — with the specific
    /// [`ConfigError`] rule — when parameters are out of range
    /// (`k` beyond [`dna::MAX_K`], `p > k` or `p == 0`, zero partitions), the work
    /// dir is missing, or no compute device is configured.
    pub fn build(self) -> Result<ParaHashConfig> {
        if self.k == 0 || self.k > dna::MAX_K {
            return Err(ConfigError::KOutOfRange { k: self.k }.into());
        }
        if self.p == 0 || self.p > self.k {
            return Err(ConfigError::MinimizerNotShorter { p: self.p, k: self.k }.into());
        }
        if self.partitions == 0 {
            return Err(ConfigError::NoPartitions.into());
        }
        let work_dir = self.work_dir.ok_or(ConfigError::MissingWorkDir)?;

        let mut devices: Vec<Arc<dyn Device>> = Vec::new();
        if let Some(threads) = self.cpu_threads {
            let threads = if threads == 0 {
                std::thread::available_parallelism().map(usize::from).unwrap_or(1)
            } else {
                threads
            };
            devices.push(Arc::new(CpuDevice::new("cpu0", threads)));
        }
        for (i, gpu) in self.gpus.into_iter().enumerate() {
            devices.push(Arc::new(SimGpuDevice::new(format!("gpu{i}"), gpu)));
        }
        devices.extend(self.extra_devices);
        if devices.is_empty() {
            return Err(ConfigError::NoDevices.into());
        }
        let split = self.split.unwrap_or_else(|| {
            std::env::var("PARAHASH_SPLIT")
                .ok()
                .and_then(|s| SplitPolicy::parse(&s).ok())
                .unwrap_or(SplitPolicy::Auto)
        });
        Ok(ParaHashConfig {
            k: self.k,
            p: self.p,
            partitions: self.partitions,
            sizing: self.sizing,
            read_batch_bytes: self.read_batch_bytes,
            io_mode: self.io_mode,
            work_dir,
            write_subgraphs: self.write_subgraphs,
            auto_lambda: self.auto_lambda,
            strict: self.strict,
            retry: self.retry,
            indexed_fastq: self.indexed_fastq,
            partition_memory_budget: self.partition_memory_budget,
            table_memory_budget: self.table_memory_budget,
            out_of_core: self.out_of_core,
            workers: self.workers,
            listen: self.listen,
            worker_args: self.worker_args,
            resume: self.resume,
            split,
            devices,
            run_token: String::new(),
            input_digest: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ParaHashError;

    fn base() -> ParaHashConfigBuilder {
        ParaHashConfig::builder().work_dir("/tmp/parahash-config-test")
    }

    #[test]
    fn defaults_match_paper() {
        let c = base().build().unwrap();
        assert_eq!(c.k(), 27);
        assert_eq!(c.p(), 11);
        assert_eq!(c.partitions(), 64);
        assert_eq!(c.devices().len(), 1);
        assert_eq!(c.io_mode(), IoMode::Unthrottled);
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(base().k(0).build().is_err());
        assert!(base().k(dna::MAX_K + 1).build().is_err());
        assert!(base().p(0).build().is_err());
        assert!(base().k(5).p(6).build().is_err());
        assert!(base().partitions(0).build().is_err());
        assert!(ParaHashConfig::builder().build().is_err(), "work_dir required");
        assert!(base().no_cpu().build().is_err(), "needs a device");
    }

    fn config_err(result: Result<ParaHashConfig>) -> ConfigError {
        match result {
            Err(ParaHashError::Config(e)) => e,
            Err(other) => panic!("expected ParaHashError::Config, got {other}"),
            Ok(_) => panic!("expected rejection"),
        }
    }

    #[test]
    fn k_beyond_packed_word_maximum_is_named() {
        let e = config_err(base().k(dna::MAX_K + 1).p(11).build());
        assert_eq!(e, ConfigError::KOutOfRange { k: dna::MAX_K + 1 });
        assert!(e.to_string().contains("packed-word maximum"), "{e}");
        assert_eq!(config_err(base().k(0).build()), ConfigError::KOutOfRange { k: 0 });
    }

    #[test]
    fn minimizer_length_is_validated_at_build_time() {
        // p > k is rejected here, not deep in the scanner.
        let e = config_err(base().k(7).p(9).build());
        assert_eq!(e, ConfigError::MinimizerNotShorter { p: 9, k: 7 });
        assert!(e.to_string().contains("1 <= p <= k"), "{e}");
        assert!(matches!(
            config_err(base().k(7).p(0).build()),
            ConfigError::MinimizerNotShorter { p: 0, k: 7 }
        ));
        assert!(base().k(7).p(7).build().is_ok(), "p == k is the degenerate-but-legal maximum");
        assert!(base().k(7).p(6).build().is_ok());
    }

    #[test]
    fn zero_partitions_and_missing_pieces_are_named() {
        assert_eq!(config_err(base().partitions(0).build()), ConfigError::NoPartitions);
        assert_eq!(config_err(ParaHashConfig::builder().build()), ConfigError::MissingWorkDir);
        assert_eq!(config_err(base().no_cpu().build()), ConfigError::NoDevices);
    }

    #[test]
    fn resume_flag_roundtrips() {
        assert!(!base().build().unwrap().resume(), "fresh runs by default");
        assert!(base().resume(true).build().unwrap().resume());
    }

    #[test]
    fn out_of_core_and_sharding_knobs() {
        let c = base().build().unwrap();
        assert_eq!(c.table_memory_budget(), u64::MAX, "unlimited by default");
        assert!(c.out_of_core(), "splitting enabled by default");
        assert_eq!(c.workers(), 0, "in-process Step 2 by default");
        let c = base()
            .table_memory_budget(64 << 10)
            .out_of_core(false)
            .workers(4)
            .worker_spawn_args(["worker_entry", "--exact"])
            .build()
            .unwrap();
        assert_eq!(c.table_memory_budget(), 64 << 10);
        assert!(!c.out_of_core());
        assert_eq!(c.workers(), 4);
        assert_eq!(c.worker_args, ["worker_entry", "--exact"]);
    }

    #[test]
    fn strict_and_retry_knobs() {
        let c = base().build().unwrap();
        assert!(c.strict(), "strict is the default");
        assert_eq!(c.retry(), RetryPolicy::default());
        let c = base().strict(false).retry(RetryPolicy::none()).build().unwrap();
        assert!(!c.strict());
        assert_eq!(c.retry().attempts, 1);
    }

    #[test]
    fn device_roster_assembles() {
        let c = base()
            .cpu_threads(4)
            .sim_gpu(SimGpuConfig::default())
            .sim_gpu(SimGpuConfig::default())
            .build()
            .unwrap();
        let names: Vec<_> = c.devices().iter().map(|d| d.name().to_owned()).collect();
        assert_eq!(names, ["cpu0", "gpu0", "gpu1"]);
        let gpu_only = base().no_cpu().sim_gpu(SimGpuConfig::default()).build().unwrap();
        assert_eq!(gpu_only.devices().len(), 1);
    }

    #[test]
    fn split_policy_defaults_to_auto_and_roundtrips() {
        // NB: no env manipulation here — PARAHASH_SPLIT is only consulted
        // when the builder method is absent, and tests run with it unset.
        assert_eq!(base().build().unwrap().split(), SplitPolicy::Auto);
        let c = base().split(SplitPolicy::Static(0.25)).build().unwrap();
        assert_eq!(c.split(), SplitPolicy::Static(0.25));
        assert_eq!(base().split(SplitPolicy::CpuOnly).build().unwrap().split(), SplitPolicy::CpuOnly);
    }

    #[test]
    fn debug_output_names_devices() {
        let c = base().cpu_threads(2).build().unwrap();
        let dbg = format!("{c:?}");
        assert!(dbg.contains("cpu0"), "{dbg}");
    }
}
