//! ParaHash — the end-to-end system of the paper: partition-by-partition
//! De Bruijn graph construction on heterogeneous processors.
//!
//! A run executes the paper's two-step workflow (Fig 3):
//!
//! 1. **Step 1 — MSP.** The input read set is cut into equal-size input
//!    batches; each batch flows through the three-stage pipeline (read →
//!    scan on an idle CPU/GPU → append encoded superkmers to the partition
//!    files on disk).
//! 2. **Step 2 — Hashing.** Each superkmer partition flows through the
//!    pipeline again (read partition file → concurrent hash construction
//!    on an idle CPU/GPU, with the table sized by Property 1 → subgraph
//!    absorbed into the final graph, optionally persisted).
//!
//! Both steps share the work-stealing scheduler of the `pipeline` crate
//! and the (possibly throttled) I/O channel, so the Case-1/Case-2 regimes
//! of §IV are directly reproducible.
//!
//! Beyond the two-phase flow above, [`ParaHash::run_fused`] runs the
//! steps **fused**: Step 1 stages partitions in a budget-governed
//! in-memory [`msp::PartitionStore`] (spilling the largest to disk only
//! when
//! [`partition_memory_budget`](ParaHashConfigBuilder::partition_memory_budget)
//! is exceeded) while Step 2 consumes sealed partitions concurrently
//! from a streaming queue, recycling hash-table allocations through a
//! [`hashgraph::TablePool`]. The fused result is byte-identical to the
//! two-phase one — only where the partition bytes live changes.
//!
//! # Examples
//!
//! ```
//! use dna::SeqRead;
//! use parahash::{ParaHash, ParaHashConfig};
//!
//! # fn main() -> Result<(), parahash::ParaHashError> {
//! let reads = vec![
//!     SeqRead::from_ascii("r0", b"TGATGGATGAACCAGTTTGAGGC"),
//!     SeqRead::from_ascii("r1", b"ACCAGTTTGAGGCATTAGGCATT"),
//! ];
//! let config = ParaHashConfig::builder()
//!     .k(7)
//!     .p(4)
//!     .partitions(4)
//!     .cpu_threads(2)
//!     .work_dir(std::env::temp_dir().join("parahash-doc"))
//!     .build()?;
//! let outcome = ParaHash::new(config)?.run(&reads)?;
//! assert_eq!(outcome.graph.total_kmer_occurrences(), 2 * (23 - 7 + 1));
//! # Ok(())
//! # }
//! ```

mod config;
mod journal;
mod once_error;
mod report;
mod shard;
mod staging;
mod step1;
mod step2;
mod system;

pub use config::{ConfigError, ParaHashConfig, ParaHashConfigBuilder};
pub use journal::{Fingerprint, JournalEvent, JournalState, RunJournal, TunerState};
pub use once_error::OnceError;
pub use pipeline::SplitPolicy;
pub use report::{CoprocSummary, RunReport, Step1Stats, StepReport};
pub use shard::{run_remote_worker, worker_from_env};
pub use step1::{run_step1, run_step1_fastq};
pub use step2::{decode_subgraph, decode_subgraph_checked, encode_subgraph, run_step2};
pub use system::{ParaHash, RunOutcome};

/// Errors from a ParaHash run.
#[derive(Debug)]
#[non_exhaustive]
pub enum ParaHashError {
    /// Configuration rejected at build time.
    InvalidConfig(String),
    /// A specific configuration parameter rejected at build time (see
    /// [`ConfigError`] for the precise rule that was violated).
    Config(ConfigError),
    /// Step-1 partitioning failure.
    Msp(msp::MspError),
    /// Step-2 construction failure.
    HashGraph(hashgraph::HashGraphError),
    /// Simulated-device failure (e.g. device memory exhausted).
    Device(hetsim::HetsimError),
    /// Filesystem failure.
    Io(std::io::Error),
    /// `run.journal` could not be replayed (malformed record that is not
    /// a torn tail, or an event that contradicts the run shape).
    Journal {
        /// Byte offset of the offending record.
        offset: u64,
        /// What was wrong with it.
        reason: String,
    },
    /// A resume was requested but the journal's config fingerprint does
    /// not match the current configuration/input — resuming would mix
    /// artifacts from two different runs.
    FingerprintMismatch {
        /// Fingerprint recorded in the journal.
        journal: Fingerprint,
        /// Fingerprint of the config/input the resume was asked to use.
        current: Fingerprint,
    },
    /// A partition's projected Property-1 table exceeds
    /// [`table_memory_budget`](ParaHashConfigBuilder::table_memory_budget)
    /// and out-of-core sub-partitioning is disabled
    /// ([`out_of_core(false)`](ParaHashConfigBuilder::out_of_core)).
    TableOverBudget {
        /// The over-budget partition.
        partition: usize,
        /// Bytes the §IV-A sizing rule projects for its table.
        projected_bytes: u64,
        /// The configured per-table budget it busted.
        budget: u64,
    },
    /// The multi-process sharded Step 2 failed: a wire-protocol fault,
    /// or a partition that exhausted its worker attempts in strict mode.
    Shard(String),
}

impl std::fmt::Display for ParaHashError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParaHashError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            ParaHashError::Config(e) => write!(f, "invalid configuration: {e}"),
            ParaHashError::Msp(e) => write!(f, "msp step failed: {e}"),
            ParaHashError::HashGraph(e) => write!(f, "hashing step failed: {e}"),
            ParaHashError::Device(e) => write!(f, "device failure: {e}"),
            ParaHashError::Io(e) => write!(f, "i/o failure: {e}"),
            ParaHashError::Journal { offset, reason } => {
                write!(f, "corrupt run journal at byte {offset}: {reason}")
            }
            ParaHashError::FingerprintMismatch { journal, current } => write!(
                f,
                "refusing to resume: journal fingerprint {journal} does not match the \
                 current run's fingerprint {current} (config or input changed since the \
                 interrupted run — start a fresh run instead)"
            ),
            ParaHashError::TableOverBudget { partition, projected_bytes, budget } => write!(
                f,
                "partition {partition}'s projected hash table of {projected_bytes} bytes \
                 exceeds the {budget}-byte table budget and out-of-core sub-partitioning \
                 is disabled"
            ),
            ParaHashError::Shard(msg) => write!(f, "sharded step 2 failed: {msg}"),
        }
    }
}

impl std::error::Error for ParaHashError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParaHashError::Msp(e) => Some(e),
            ParaHashError::HashGraph(e) => Some(e),
            ParaHashError::Device(e) => Some(e),
            ParaHashError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for ParaHashError {
    fn from(e: ConfigError) -> Self {
        ParaHashError::Config(e)
    }
}

impl From<msp::MspError> for ParaHashError {
    fn from(e: msp::MspError) -> Self {
        ParaHashError::Msp(e)
    }
}

impl From<hashgraph::HashGraphError> for ParaHashError {
    fn from(e: hashgraph::HashGraphError) -> Self {
        ParaHashError::HashGraph(e)
    }
}

impl From<hetsim::HetsimError> for ParaHashError {
    fn from(e: hetsim::HetsimError) -> Self {
        ParaHashError::Device(e)
    }
}

impl From<std::io::Error> for ParaHashError {
    fn from(e: std::io::Error) -> Self {
        ParaHashError::Io(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, ParaHashError>;
