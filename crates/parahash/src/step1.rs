use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use dna::{Kmer, PackedSeq, SeqRead};
use hetsim::{Device, DeviceKind};
use msp::{
    encode_superkmer_slice, PartitionManifest, PartitionRouter, PartitionSink, PartitionWriter,
    SuperkmerScanner,
};
use parking_lot::Mutex;
use pipeline::{run_coprocessed_with, CancelToken, PipelineReport, ThrottledIo};

use crate::once_error::OnceError;
use crate::staging::{ShardPool, StagingShard, WorkerShards, WriteOnceSlots};
use crate::{ParaHashConfig, Result, Step1Stats, StepReport};

/// Output of one Step-1 compute launch: the worker shards holding the
/// per-partition encoded superkmer bytes and `(superkmers, kmers)`
/// counts, plus the number of input bases the launch consumed. The
/// output stage drains the shards into the partition writer and returns
/// them to the [`ShardPool`] so their capacity is reused.
struct Batch1Out {
    shards: Vec<StagingShard>,
    bases: u64,
}

/// Boundary runs of one read: `(first kmer, last kmer, minimizer)`.
type BoundaryRuns = Vec<(usize, usize, Kmer)>;

/// Splits reads into the "equal-size input partitions" of Fig 3 by
/// cumulative byte size.
fn batch_ranges(reads: &[SeqRead], batch_bytes: usize) -> Vec<std::ops::Range<usize>> {
    let mut ranges = Vec::new();
    let mut start = 0usize;
    let mut acc = 0usize;
    for (i, r) in reads.iter().enumerate() {
        acc += r.approx_bytes();
        if acc >= batch_bytes {
            ranges.push(start..i + 1);
            start = i + 1;
            acc = 0;
        }
    }
    if start < reads.len() {
        ranges.push(start..reads.len());
    }
    ranges
}

/// Step 1 of ParaHash: pipelined, co-processed MSP partitioning of an
/// in-memory read set.
///
/// Input batches flow through the three-stage pipeline; whichever device
/// is idle scans a batch into superkmers (each read's scan is one
/// data-parallel item — one GPU lane per read, one CPU thread per group,
/// as in §III-D), encodes them to the 2-bit record format, and the output
/// stage appends the bytes to the per-partition files.
///
/// The compute stage is **allocation- and lock-free per read**: each
/// worker checks a [`StagingShard`] out of a roster (one atomic CAS),
/// streams the read through a reusable minimizer cursor, and encodes every
/// superkmer straight from the read's packed words into the shard's
/// thread-private partition buffer.
///
/// Returns the partition manifest (input to Step 2) and the step report.
///
/// # Errors
///
/// Propagates partition-file I/O failures and invalid parameters.
pub fn run_step1(
    config: &ParaHashConfig,
    reads: &[SeqRead],
    io: &ThrottledIo,
) -> Result<(PartitionManifest, StepReport)> {
    let dir = config.work_dir.join("superkmers");
    let mut writer = PartitionWriter::create_scoped(&dir, config.partitions, config.k, config.p, &config.run_token)?;
    let cancel = CancelToken::new();
    let baselines = device_baselines(config);
    match step1_sink_reads(config, reads, io, &cancel, &mut writer) {
        Ok((stats, pipeline_report, peak_batch)) => {
            let deltas = device_deltas(config, &baselines);
            let manifest = writer.finish()?;
            Ok((manifest, step1_report(config, stats, pipeline_report, peak_batch, &deltas)))
        }
        Err(e) => {
            // The partition directory holds an inconsistent prefix —
            // remove it so Step 2 can never be pointed at it.
            drop(writer);
            let _ = std::fs::remove_dir_all(&dir);
            Err(e)
        }
    }
}

/// The sink-agnostic body of [`run_step1`]: streams in-memory reads
/// through the Step-1 pipeline into any [`PartitionSink`] (the classic
/// all-disk writer or the fused pipeline's budget-governed
/// [`msp::PartitionStore`]). Returns the emit stats, the pipeline report
/// and the peak in-flight batch bytes; the caller owns manifest
/// finalisation and error cleanup.
pub(crate) fn step1_sink_reads<S: PartitionSink + Send>(
    config: &ParaHashConfig,
    reads: &[SeqRead],
    io: &ThrottledIo,
    cancel: &CancelToken,
    sink: &mut S,
) -> Result<(Step1Stats, PipelineReport, u64)> {
    let ranges = batch_ranges(reads, config.read_batch_bytes);
    let peak_batch = AtomicU64::new(0);
    let (stats, report) = run_step1_batches(
        config,
        ranges.len(),
        |i| {
            let batch = &reads[ranges[i].clone()];
            let bytes: usize = batch.iter().map(SeqRead::approx_bytes).sum();
            peak_batch.fetch_max(bytes as u64, Ordering::Relaxed);
            io.charge(bytes as u64);
            batch
        },
        io,
        cancel,
        sink,
    )?;
    Ok((stats, report, peak_batch.into_inner()))
}

/// Streaming Step 1 over a FASTQ file: the input stage parses one batch
/// of reads at a time, so the whole read set is **never resident in
/// memory** — the property the paper's partition-by-partition workflow
/// (Fig 3) depends on for big genomes.
///
/// By default the file is read **exactly once**: the input stage cuts a
/// batch as soon as ~`read_batch_bytes` of sequence has been parsed
/// (the batch count is conservatively bounded by the file size, and
/// trailing batches are simply empty). With
/// [`indexed_fastq(true)`](crate::ParaHashConfigBuilder::indexed_fastq)
/// a two-pass variant runs instead: a cheap indexing pre-pass counts
/// records per batch, then the pipeline re-reads the file.
///
/// # Errors
///
/// Propagates FASTQ parse failures (as [`crate::ParaHashError::Msp`] is
/// *not* used here — malformed records surface as
/// [`crate::ParaHashError::InvalidConfig`] with the parser's message) and
/// partition-file I/O failures.
pub fn run_step1_fastq(
    config: &ParaHashConfig,
    path: impl AsRef<std::path::Path>,
    io: &ThrottledIo,
) -> Result<(PartitionManifest, StepReport)> {
    let dir = config.work_dir.join("superkmers");
    let mut writer = PartitionWriter::create_scoped(&dir, config.partitions, config.k, config.p, &config.run_token)?;
    let cancel = CancelToken::new();
    let baselines = device_baselines(config);
    match step1_sink_fastq(config, path.as_ref(), io, &cancel, &mut writer) {
        Ok((stats, pipeline_report, peak_batch)) => {
            let deltas = device_deltas(config, &baselines);
            let manifest = writer.finish()?;
            Ok((manifest, step1_report(config, stats, pipeline_report, peak_batch, &deltas)))
        }
        Err(e) => {
            // Abandon the partial partition directory: it covers an
            // unknown prefix of the input.
            drop(writer);
            let _ = std::fs::remove_dir_all(&dir);
            Err(e)
        }
    }
}

/// The sink-agnostic body of [`run_step1_fastq`] (both the single-pass
/// and the indexed two-pass variants): streams a FASTQ file through the
/// Step-1 pipeline into any [`PartitionSink`]. Parse failures poison the
/// stream (the position is lost) and surface as `Err`; the caller owns
/// manifest finalisation and directory cleanup.
pub(crate) fn step1_sink_fastq<S: PartitionSink + Send>(
    config: &ParaHashConfig,
    path: &std::path::Path,
    io: &ThrottledIo,
    cancel: &CancelToken,
    sink: &mut S,
) -> Result<(Step1Stats, PipelineReport, u64)> {
    use std::io::BufReader;

    // Indexed (two-pass) mode: pass 1 indexes the file into record-exact
    // batch cuts, pass 2 re-reads it through the pipeline. Single-pass
    // mode needs no index: the batch count only has to *bound* the number
    // of batches the input stage will produce. A FASTQ record spends at
    // least its sequence length in file bytes (plus header, '+' line and
    // qualities), so `file_len / read_batch_bytes + 1` batches of
    // ~`read_batch_bytes` of sequence each can never fall short; the
    // surplus batches parse nothing and flow through as empty.
    // Parallel chunked ingest: map the file (inflating gzip members in
    // parallel), cut it into record-aligned chunks, and let every Step-1
    // worker parse its own slice — the sequential `FastqReader` below
    // otherwise caps ingest at one core. Only taken when it cannot
    // change observable behaviour: the indexed two-pass mode promises
    // exact batch cuts, simulated GPUs meter per-batch transfers, and
    // `PARAHASH_FORCE_SCALAR` pins every fallback path.
    if !config.indexed_fastq
        && !dna::simd::force_scalar()
        && config.devices().iter().all(|d| d.kind() == DeviceKind::Cpu)
    {
        return step1_sink_fastq_chunks(config, path, io, cancel, sink);
    }

    // Gzip inputs are inflated up front so the sequential path accepts
    // exactly the same files as the chunked one — the scalar escape
    // hatch (and the indexed/GPU modes) must not change which inputs
    // parse, only how fast.
    let inflated: Option<Vec<u8>> = {
        use std::io::Read;
        let mut magic = [0u8; 2];
        let n = std::fs::File::open(path)?.read(&mut magic)?;
        if n == 2 && dna::gzip::is_gzip(&magic) {
            Some(dna::gzip::decompress(&std::fs::read(path)?).map_err(parse_error)?)
        } else {
            None
        }
    };
    let open_reader = || -> Result<Box<dyn Iterator<Item = dna::Result<dna::SeqRead>> + Send + '_>> {
        Ok(match &inflated {
            Some(text) => Box::new(dna::FastqSliceReader::new(text)),
            None => Box::new(dna::FastqReader::new(BufReader::new(std::fs::File::open(path)?))),
        })
    };

    let batch_records: Option<Vec<usize>> = if config.indexed_fastq {
        let mut cuts: Vec<usize> = Vec::new();
        let mut records = 0usize;
        let mut bytes = 0usize;
        for record in open_reader()? {
            let record = record.map_err(parse_error)?;
            records += 1;
            bytes += record.approx_bytes();
            if bytes >= config.read_batch_bytes {
                cuts.push(records);
                records = 0;
                bytes = 0;
            }
        }
        if records > 0 {
            cuts.push(records);
        }
        Some(cuts)
    } else {
        None
    };
    let n_batches = match &batch_records {
        Some(cuts) => cuts.len(),
        None => {
            let file_len = match &inflated {
                Some(text) => text.len() as u64,
                None => std::fs::metadata(path)?.len(),
            };
            (file_len / config.read_batch_bytes.max(1) as u64) as usize + 1
        }
    };

    let mut reader = open_reader()?;
    let peak_batch = AtomicU64::new(0);
    let parse_failure: OnceError<crate::ParaHashError> = OnceError::new();
    let result = {
        let parse_failure = &parse_failure;
        let peak_batch = &peak_batch;
        let batch_records = &batch_records;
        run_step1_batches(
            config,
            n_batches,
            move |i| {
                let mut batch = match batch_records {
                    Some(cuts) => Vec::with_capacity(cuts[i]),
                    None => Vec::new(),
                };
                let mut bytes = 0usize;
                loop {
                    match batch_records {
                        // Indexed: stop at this batch's record count.
                        Some(cuts) => {
                            if batch.len() >= cuts[i] {
                                break;
                            }
                        }
                        // Single pass: cut once enough sequence arrived.
                        None => {
                            if bytes >= config.read_batch_bytes {
                                break;
                            }
                        }
                    }
                    match reader.next() {
                        Some(Ok(read)) => {
                            bytes += read.approx_bytes();
                            batch.push(read);
                        }
                        None => break,
                        Some(Err(e)) => {
                            // A parse failure poisons everything after it
                            // (the stream position is lost): stop feeding
                            // the pipeline rather than scanning the rest.
                            parse_failure.set(parse_error(e));
                            cancel.cancel();
                            break;
                        }
                    }
                }
                peak_batch.fetch_max(bytes as u64, Ordering::Relaxed);
                io.charge(bytes as u64);
                batch
            },
            io,
            cancel,
            sink,
        )
    };
    if let Some(e) = parse_failure.into_inner() {
        return Err(e);
    }
    let (stats, report) = result?;
    Ok((stats, report, peak_batch.into_inner()))
}

fn parse_error(e: dna::DnaError) -> crate::ParaHashError {
    match e {
        dna::DnaError::Io(io) => crate::ParaHashError::Io(io),
        other => crate::ParaHashError::InvalidConfig(format!("bad fastq input: {other}")),
    }
}

/// Parallel chunked FASTQ ingest: the whole file is mapped (or inflated,
/// for gzip) once, split into record-aligned chunks of
/// ~`read_batch_bytes`, and each chunk flows through the pipeline as one
/// batch whose compute stage re-splits it across the device's workers —
/// every Step-1 worker parses *and* scans its own byte slice, so ingest
/// is no longer serialised on one parser thread.
///
/// Per-partition output multisets are identical to the sequential path:
/// chunk and sub-chunk cuts land only on record boundaries, every record
/// is parsed by exactly one worker, and superkmer routing is
/// order-independent. Batch *counts* differ from the sequential path
/// (chunks replace byte-budget batches), which no consumer observes —
/// stats are cross-checked against manifest totals only.
fn step1_sink_fastq_chunks<S: PartitionSink + Send>(
    config: &ParaHashConfig,
    path: &std::path::Path,
    io: &ThrottledIo,
    cancel: &CancelToken,
    sink: &mut S,
) -> Result<(Step1Stats, PipelineReport, u64)> {
    let chunks = msp::FastqChunks::open(path, config.read_batch_bytes.max(1))?;
    let scanner = SuperkmerScanner::new(config.k, config.p)?;
    let router = PartitionRouter::new(config.partitions)?;
    let k = config.k;
    let write_error: OnceError<msp::MspError> = OnceError::new();
    let parse_failure: OnceError<crate::ParaHashError> = OnceError::new();
    let mut stats = Step1Stats::default();
    let peak_batch = AtomicU64::new(0);
    let shard_pool = ShardPool::new(config.partitions, config.k, config.p);

    let pipeline_report = {
        let chunks = &chunks;
        let scanner = &scanner;
        let router = &router;
        let sink = &mut *sink;
        let write_error = &write_error;
        let parse_failure = &parse_failure;
        let shard_pool = &shard_pool;
        let stats = &mut stats;
        let peak_batch = &peak_batch;
        run_coprocessed_with(
            chunks.n_chunks(),
            config.devices(),
            cancel,
            |i| {
                let len = chunks.ranges()[i].len() as u64;
                peak_batch.fetch_max(len, Ordering::Relaxed);
                io.charge(len);
                i
            },
            |device: &dyn Device, _idx, chunk_idx: usize| {
                let chunk = chunks.chunk(chunk_idx);
                let n_workers = device.parallelism().max(1);
                // Re-split the chunk at record boundaries, one sub-slice
                // per worker (the cut search yields at most `n_workers`
                // ranges for this target).
                let subs =
                    dna::chunk_record_ranges(chunk, chunk.len().div_ceil(n_workers).max(1));
                debug_assert!(subs.len() <= n_workers);
                let roster = WorkerShards::new(shard_pool.take(n_workers));
                let records = AtomicU64::new(0);
                let bases = AtomicU64::new(0);
                device.execute(subs.len(), &|w| {
                    let sub = &chunk[subs[w].clone()];
                    let mut shard = roster.checkout();
                    let mut reader = dna::FastqSliceReader::new(sub);
                    let mut scratch = PackedSeq::new();
                    let mut sub_records = 0u64;
                    let mut sub_bases = 0u64;
                    loop {
                        match reader.read_record_view() {
                            Ok(Some(view)) => {
                                sub_records += 1;
                                sub_bases += view.seq.len() as u64;
                                scratch.clear();
                                scratch.extend_from_ascii(view.seq);
                                let read = &scratch;
                                let StagingShard { buffers, counts, cursor } = &mut *shard;
                                scanner.scan_runs(read, cursor, |first, last, m| {
                                    emit_run(router, k, read, (first, last), &m, buffers, counts);
                                });
                            }
                            Ok(None) => break,
                            Err(e) => {
                                // Report the line relative to the whole
                                // file: the slice parser only knows its
                                // own offset.
                                let sub_start = chunks.ranges()[chunk_idx].start + subs[w].start;
                                parse_failure.set(parse_error(offset_parse_lines(
                                    e,
                                    &chunks.bytes()[..sub_start],
                                )));
                                cancel.cancel();
                                break;
                            }
                        }
                    }
                    records.fetch_add(sub_records, Ordering::Relaxed);
                    bases.fetch_add(sub_bases, Ordering::Relaxed);
                });
                let out =
                    Batch1Out { shards: roster.into_shards(), bases: bases.into_inner() };
                (out, records.into_inner())
            },
            |_idx, out: Batch1Out| {
                drain_batch(out, stats, io, sink, write_error, cancel, shard_pool);
            },
        )
    };

    if let Some(e) = parse_failure.into_inner() {
        return Err(e);
    }
    if let Some(e) = write_error.into_inner() {
        return Err(e.into());
    }
    Ok((stats, pipeline_report, peak_batch.into_inner()))
}

/// Rebases a chunk-relative [`dna::DnaError::MalformedRecord`] line
/// number onto the whole file by counting the newlines before the chunk.
/// Only runs on the (already doomed) error path.
fn offset_parse_lines(e: dna::DnaError, prefix: &[u8]) -> dna::DnaError {
    match e {
        dna::DnaError::MalformedRecord { line, reason } => {
            let before = prefix.iter().filter(|&&b| b == b'\n').count() as u64;
            dna::DnaError::MalformedRecord { line: before + line, reason }
        }
        other => other,
    }
}

/// Assembles Step 1's [`StepReport`] from the pipeline outputs.
/// `deltas` are the per-device metric deltas for the step window (see
/// [`device_deltas`]).
pub(crate) fn step1_report(
    config: &ParaHashConfig,
    stats: Step1Stats,
    pipeline_report: PipelineReport,
    peak_batch: u64,
    deltas: &[hetsim::DeviceMetrics],
) -> StepReport {
    let (cpu_compute, gpu_compute) =
        split_device_times(config, &pipeline_report.shares, deltas);
    StepReport {
        step: 1,
        pipeline: pipeline_report,
        cpu_compute,
        gpu_compute,
        contention: None,
        step1_stats: Some(stats),
        resizes: 0,
        peak_partition_bytes: peak_batch,
        peak_table_bytes: 0, // Step 1 allocates no hash tables
        peak_resident_store_bytes: 0, // filled in by the fused driver
        quarantined: Vec::new(),
        sub_splits: Vec::new(),
        coproc: None, // Step 1 is not split-scheduled
        exhausted_leases: Vec::new(),
    }
}

/// Routes and encodes one boundary run (`first..=last`, `minimizer`) of
/// `read` into a shard's partition buffer: the single emit primitive of
/// the Step-1 hot path. Zero allocation (buffer growth amortises to
/// nothing once the shard is warm) and zero synchronisation — the caller
/// holds the shard exclusively.
#[inline]
fn emit_run(
    router: &PartitionRouter,
    k: usize,
    read: &PackedSeq,
    (first, last): (usize, usize),
    minimizer: &Kmer,
    buffers: &mut [Vec<u8>],
    counts: &mut [(u64, u64)],
) {
    let part = router.route_minimizer(minimizer);
    let left_ext = first.checked_sub(1).map(|i| read.base(i));
    let right_ext = (last + k < read.len()).then(|| read.base(last + k));
    encode_superkmer_slice(read, first, last, k, left_ext, right_ext, &mut buffers[part]);
    counts[part].0 += 1;
    counts[part].1 += (last - first + 1) as u64;
}

/// The shared Step-1 pipeline over any batch source (in-memory slices or
/// a streaming parser) and any [`PartitionSink`] (disk writer or the
/// fused pipeline's budget-governed store).
fn run_step1_batches<B, FP, S>(
    config: &ParaHashConfig,
    n_batches: usize,
    produce: FP,
    io: &ThrottledIo,
    cancel: &CancelToken,
    sink: &mut S,
) -> Result<(Step1Stats, PipelineReport)>
where
    B: AsRef<[SeqRead]> + Send,
    FP: FnMut(usize) -> B + Send,
    S: PartitionSink + Send,
{
    let scanner = SuperkmerScanner::new(config.k, config.p)?;
    let router = PartitionRouter::new(config.partitions)?;
    let k = config.k;
    let write_error: OnceError<msp::MspError> = OnceError::new();
    let mut stats = Step1Stats::default();

    // All staging capacity lives in these two pools and is recycled
    // across batches: at steady state the compute stage allocates
    // nothing. Both free lists are locked once per batch, never per read.
    let shard_pool = ShardPool::new(config.partitions, config.k, config.p);
    let boundary_pool: Mutex<Vec<BoundaryRuns>> = Mutex::new(Vec::new());

    let pipeline_report = {
        let scanner = &scanner;
        let router = &router;
        let sink = &mut *sink;
        let write_error = &write_error;
        let shard_pool = &shard_pool;
        let boundary_pool = &boundary_pool;
        let stats = &mut stats;
        run_coprocessed_with(
            n_batches,
            config.devices(),
            cancel,
            produce,
            // Stage 2: scan + encode on an idle device. Emits go to
            // thread-private shards — no locks, no per-read allocation.
            |device: &dyn Device, _idx, batch: B| {
                let batch = batch.as_ref();
                let bases: u64 = batch.iter().map(|r| r.len() as u64).sum();
                let n_workers = device.parallelism().min(batch.len()).max(1);
                let roster = WorkerShards::new(shard_pool.take(n_workers));
                if device.kind() == DeviceKind::SimGpu {
                    // The paper's §III-D split: reads travel to the device
                    // 2-bit encoded (¼ byte per base), the *kernel* only
                    // computes superkmer ids and offsets (regular,
                    // fixed-width output: one write-once slot per read),
                    // and the irregular memory movement — materialising
                    // and encoding superkmers — stays on the host.
                    let encoded: u64 = batch.iter().map(|r| r.len() as u64 / 4 + 1).sum();
                    device.transfer_to_device(encoded);
                    let slots = WriteOnceSlots::new(take_boundary_slots(
                        boundary_pool,
                        batch.len(),
                    ));
                    device.execute(batch.len(), &|i| {
                        // Work item i writes slot i — disjoint by
                        // construction, so no lock is needed; the cursor
                        // comes from a CAS-checked-out shard.
                        let mut shard = roster.checkout();
                        slots.with_mut(i, |runs| {
                            scanner.scan_runs_into(batch[i].seq(), &mut shard.cursor, runs);
                        });
                    });
                    // Host half: encode the runs into one shard's buffers.
                    let boundaries = slots.into_inner();
                    {
                        let mut shard = roster.checkout();
                        let StagingShard { buffers, counts, .. } = &mut *shard;
                        for (read, runs) in batch.iter().zip(&boundaries) {
                            let read = read.seq();
                            for &(first, last, m) in runs {
                                emit_run(router, k, read, (first, last), &m, buffers, counts);
                            }
                        }
                    }
                    boundary_pool.lock().extend(boundaries);
                } else {
                    device.execute(batch.len(), &|i| {
                        let mut shard = roster.checkout();
                        let read = batch[i].seq();
                        let StagingShard { buffers, counts, cursor } = &mut *shard;
                        scanner.scan_runs(read, cursor, |first, last, m| {
                            emit_run(router, k, read, (first, last), &m, buffers, counts);
                        });
                    });
                }
                let shards = roster.into_shards();
                if device.kind() == DeviceKind::SimGpu {
                    let out_bytes: u64 =
                        shards.iter().map(StagingShard::staged_bytes).sum();
                    device.transfer_from_device(out_bytes);
                }
                let work = batch.len() as u64;
                (Batch1Out { shards, bases }, work)
            },
            // Stage 3: drain the shards into the partition files in bulk,
            // then hand them back to the pool for the next batch.
            |_idx, out: Batch1Out| {
                drain_batch(out, stats, io, sink, write_error, cancel, shard_pool);
            },
        )
    };

    if let Some(e) = write_error.into_inner() {
        return Err(e.into());
    }
    Ok((stats, pipeline_report))
}

/// Output-stage drain shared by the batched and chunked Step-1 pipelines:
/// flushes every shard's partition buffers into the sink, tallies the
/// emit stats, and recycles the shards into the pool.
fn drain_batch<S: PartitionSink>(
    out: Batch1Out,
    stats: &mut Step1Stats,
    io: &ThrottledIo,
    sink: &mut S,
    write_error: &OnceError<msp::MspError>,
    cancel: &CancelToken,
    shard_pool: &ShardPool,
) {
    stats.batches += 1;
    stats.bases += out.bases;
    for shard in &out.shards {
        for (part, bytes) in shard.buffers.iter().enumerate() {
            if bytes.is_empty() {
                continue;
            }
            let (sks, kms) = shard.counts[part];
            stats.superkmers += sks;
            stats.kmers += kms;
            stats.staging_bytes += bytes.len() as u64;
            stats.merge_flushes += 1;
            io.charge(bytes.len() as u64);
            // `step1.staging.flush` is the canonical crash site *before*
            // any partition data reaches its sink — everything staged so
            // far is discarded.
            let appended = pipeline::failpoint::hit("step1.staging.flush")
                .map_err(msp::MspError::Io)
                .and_then(|()| sink.append_encoded(part, bytes, sks, kms));
            if let Err(e) = appended {
                // A failed append means the partition data no longer
                // matches the stats; abandon the run now rather than
                // scanning the remaining batches.
                write_error.set(e);
                cancel.cancel();
            }
        }
    }
    shard_pool.put(out.shards);
}

/// Checks `n` boundary-run vectors out of the recycle pool (topping up
/// with fresh empties only while the pool is cold).
fn take_boundary_slots(pool: &Mutex<Vec<BoundaryRuns>>, n: usize) -> Vec<BoundaryRuns> {
    let mut free = pool.lock();
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        out.push(free.pop().unwrap_or_default());
    }
    out
}

/// Snapshot of every device's cumulative metrics, taken at step start so
/// per-step times can be diffed out with
/// [`hetsim::DeviceMetrics::delta_since`] (one device roster serves both
/// steps of a run).
pub(crate) fn device_baselines(config: &ParaHashConfig) -> Vec<hetsim::DeviceMetrics> {
    config.devices().iter().map(|d| d.metrics()).collect()
}

/// Per-device metric deltas for one step window: current meters minus the
/// `baselines` snapshot. Callers capture the deltas at the *end* of their
/// device work (not at report time) so a concurrently running other step
/// — the fused flow runs both on one roster — cannot leak into the
/// window.
pub(crate) fn device_deltas(
    config: &ParaHashConfig,
    baselines: &[hetsim::DeviceMetrics],
) -> Vec<hetsim::DeviceMetrics> {
    config
        .devices()
        .iter()
        .enumerate()
        .map(|(i, d)| {
            let baseline = baselines.get(i).copied().unwrap_or_default();
            d.metrics().delta_since(&baseline)
        })
        .collect()
}

/// Splits per-device time into the model's `T_CPU` (sum of wall busy over
/// CPU devices) and `T_GPU` (max over GPU devices, paper §IV-B).
///
/// `T_GPU` is taken from the device's **own meters** for the step window
/// (`deltas`, see [`device_deltas`]): kernel time plus host↔device
/// transfer time — exactly the paper's
/// `T_GPU = T_GPU_compute + T_DH_transfer`. Charging transfers to the
/// device (instead of letting them blur into the stage wall-clock along
/// with host-side work) is what lets the regime classifier see a
/// transfer-starved GPU as a device problem rather than disk I/O.
pub(crate) fn split_device_times(
    config: &ParaHashConfig,
    shares: &[pipeline::DeviceShare],
    deltas: &[hetsim::DeviceMetrics],
) -> (Duration, Duration) {
    let mut cpu = Duration::ZERO;
    let mut gpu = Duration::ZERO;
    for (i, (device, share)) in config.devices().iter().zip(shares).enumerate() {
        match device.kind() {
            DeviceKind::Cpu => cpu += share.busy,
            DeviceKind::SimGpu => {
                let metered = deltas.get(i).copied().unwrap_or_default().occupied();
                gpu = gpu.max(metered);
            }
        }
    }
    (cpu, gpu)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipeline::IoMode;

    fn reads() -> Vec<SeqRead> {
        vec![
            SeqRead::from_ascii("a", b"ACGTTGCATGGACCAGTTACGGATCAGGCATT"),
            SeqRead::from_ascii("b", b"TGATGGATGATGGATGGTAGCATACGTTGCAT"),
            SeqRead::from_ascii("c", b"GGCATTAGCCAGTACGGATCACCGTATGCAAT"),
            SeqRead::from_ascii("d", b"TTTTGGGGCCCCAAAATTTTGGGGCCCCAAAA"),
        ]
    }

    fn config(dir: &str) -> ParaHashConfig {
        ParaHashConfig::builder()
            .k(7)
            .p(4)
            .partitions(8)
            .cpu_threads(2)
            .read_batch_bytes(64)
            .work_dir(std::env::temp_dir().join(dir))
            .build()
            .unwrap()
    }

    #[test]
    fn batch_ranges_cover_everything_once() {
        let rs = reads();
        for bytes in [1, 40, 1000] {
            let ranges = batch_ranges(&rs, bytes);
            let mut covered = Vec::new();
            for r in &ranges {
                covered.extend(r.clone());
            }
            assert_eq!(covered, (0..rs.len()).collect::<Vec<_>>(), "batch_bytes={bytes}");
        }
        assert!(batch_ranges(&[], 100).is_empty());
    }

    #[test]
    fn step1_writes_all_kmers() {
        let cfg = config("parahash-step1-all");
        let _ = std::fs::remove_dir_all(cfg.work_dir());
        let io = ThrottledIo::new(IoMode::Unthrottled);
        let rs = reads();
        let (manifest, report) = run_step1(&cfg, &rs, &io).unwrap();
        let expected_kmers: u64 = rs.iter().map(|r| (r.len() - 7 + 1) as u64).sum();
        assert_eq!(manifest.total_kmers(), expected_kmers);
        assert_eq!(report.pipeline.total_work(), rs.len() as u64);
        assert!(report.peak_partition_bytes > 0);
        assert_eq!(report.step, 1);
        std::fs::remove_dir_all(cfg.work_dir()).unwrap();
    }

    #[test]
    fn step1_matches_in_memory_partitioning() {
        let cfg = config("parahash-step1-match");
        let _ = std::fs::remove_dir_all(cfg.work_dir());
        let io = ThrottledIo::new(IoMode::Unthrottled);
        let rs = reads();
        let (manifest, _) = run_step1(&cfg, &rs, &io).unwrap();

        let seqs: Vec<dna::PackedSeq> = rs.iter().map(|r| r.seq().clone()).collect();
        let expected = msp::partition_in_memory(&seqs, 7, 4, 8).unwrap();
        for (i, want) in expected.iter().enumerate() {
            let mut got = msp::PartitionReader::open(&manifest, i).unwrap().read_all().unwrap();
            let mut want = want.clone();
            // The pipeline may interleave batches; compare as multisets.
            got.sort_by(|a, b| a.core().cmp(b.core()));
            want.sort_by(|a, b| a.core().cmp(b.core()));
            assert_eq!(got, want, "partition {i}");
        }
        std::fs::remove_dir_all(cfg.work_dir()).unwrap();
    }

    #[test]
    fn step1_with_gpu_transfers_bytes() {
        let cfg = ParaHashConfig::builder()
            .k(7)
            .p(4)
            .partitions(4)
            .cpu_threads(1)
            .sim_gpu(hetsim::SimGpuConfig {
                transfer: hetsim::TransferModel::new(100_000_000, Duration::from_micros(1)),
                ..Default::default()
            })
            .read_batch_bytes(32)
            .work_dir(std::env::temp_dir().join("parahash-step1-gpu"))
            .build()
            .unwrap();
        let _ = std::fs::remove_dir_all(cfg.work_dir());
        let io = ThrottledIo::new(IoMode::Unthrottled);
        let (_, report) = run_step1(&cfg, &reads(), &io).unwrap();
        let gpu_metrics = cfg.devices()[1].metrics();
        let gpu_share = &report.pipeline.shares[1];
        if gpu_share.partitions > 0 {
            assert!(gpu_metrics.bytes_to_device > 0, "gpu must pay input transfers");
            assert!(gpu_metrics.transfer_time > Duration::ZERO);
            // T_GPU = T_GPU_compute + T_DH_transfer: the metered transfer
            // time is charged to the device term, not folded into I/O.
            assert!(
                report.gpu_compute >= gpu_metrics.transfer_time,
                "report gpu time {:?} must include transfer time {:?}",
                report.gpu_compute,
                gpu_metrics.transfer_time
            );
            assert_eq!(report.gpu_compute, gpu_metrics.occupied());
        }
        std::fs::remove_dir_all(cfg.work_dir()).unwrap();
    }

    #[test]
    fn short_reads_are_skipped_cleanly() {
        let cfg = config("parahash-step1-short");
        let _ = std::fs::remove_dir_all(cfg.work_dir());
        let io = ThrottledIo::new(IoMode::Unthrottled);
        let rs = vec![SeqRead::from_ascii("tiny", b"ACG"), SeqRead::from_ascii("ok", b"ACGTTGCAT")];
        let (manifest, _) = run_step1(&cfg, &rs, &io).unwrap();
        assert_eq!(manifest.total_kmers(), 3); // only the 9-mer read yields 9−7+1
        std::fs::remove_dir_all(cfg.work_dir()).unwrap();
    }

    #[test]
    fn step1_report_carries_emit_stats() {
        let cfg = config("parahash-step1-stats");
        let _ = std::fs::remove_dir_all(cfg.work_dir());
        let io = ThrottledIo::new(IoMode::Unthrottled);
        let rs = reads();
        let (manifest, report) = run_step1(&cfg, &rs, &io).unwrap();
        let stats = report.step1_stats.expect("step 1 must report emit stats");
        assert_eq!(stats.kmers, manifest.total_kmers());
        assert_eq!(stats.superkmers, manifest.total_superkmers());
        assert!(stats.superkmers > 0);
        assert!(stats.staging_bytes > 0);
        assert!(stats.merge_flushes >= 1);
        assert!(stats.batches >= 1);
        assert!(
            stats.merge_flushes <= stats.batches * cfg.partitions() as u64 * 8,
            "flushes bounded by batches × partitions × shards"
        );
        std::fs::remove_dir_all(cfg.work_dir()).unwrap();
    }

    fn write_fastq(path: &std::path::Path, reads: &[SeqRead]) {
        use std::io::Write as _;
        let mut f = std::fs::File::create(path).unwrap();
        for r in reads {
            let seq: String = r.seq().bases().map(|b| b.to_ascii() as char).collect();
            writeln!(f, "@{}\n{}\n+\n{}", r.id(), seq, "I".repeat(seq.len())).unwrap();
        }
    }

    #[test]
    fn single_pass_and_indexed_fastq_agree() {
        let rs = reads();
        let path = std::env::temp_dir()
            .join(format!("parahash-step1-fastq-{}.fastq", std::process::id()));
        write_fastq(&path, &rs);

        let run = |dir: &str, indexed: bool| {
            let cfg = ParaHashConfig::builder()
                .k(7)
                .p(4)
                .partitions(8)
                .cpu_threads(2)
                .read_batch_bytes(64)
                .indexed_fastq(indexed)
                .work_dir(std::env::temp_dir().join(dir))
                .build()
                .unwrap();
            let _ = std::fs::remove_dir_all(cfg.work_dir());
            let io = ThrottledIo::new(IoMode::Unthrottled);
            let (manifest, report) = run_step1_fastq(&cfg, &path, &io).unwrap();
            let per_part: Vec<(u64, u64)> = manifest
                .stats()
                .iter()
                .map(|s| (s.superkmers, s.kmers))
                .collect();
            let totals = (manifest.total_superkmers(), manifest.total_kmers());
            assert_eq!(report.pipeline.total_work(), rs.len() as u64, "indexed={indexed}");
            std::fs::remove_dir_all(cfg.work_dir()).unwrap();
            (per_part, totals)
        };

        let single = run("parahash-step1-fastq-single", false);
        let indexed = run("parahash-step1-fastq-indexed", true);
        assert_eq!(single, indexed, "single-pass and indexed batching must partition identically");
        std::fs::remove_file(&path).unwrap();
    }
}
