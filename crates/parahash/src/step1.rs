use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use dna::SeqRead;
use hetsim::{Device, DeviceKind};
use msp::{encode_superkmer, PartitionManifest, PartitionRouter, PartitionWriter, SuperkmerScanner};
use parking_lot::Mutex;
use pipeline::{run_coprocessed_with, CancelToken, ThrottledIo};

use crate::once_error::OnceError;
use crate::{ParaHashConfig, Result, StepReport};

/// Output of one Step-1 compute launch: per-partition encoded superkmer
/// bytes plus their record counts.
struct Batch1Out {
    buffers: Vec<Vec<u8>>,
    counts: Vec<(u64, u64)>, // (superkmers, kmers) per partition
}

/// Splits reads into the "equal-size input partitions" of Fig 3 by
/// cumulative byte size.
fn batch_ranges(reads: &[SeqRead], batch_bytes: usize) -> Vec<std::ops::Range<usize>> {
    let mut ranges = Vec::new();
    let mut start = 0usize;
    let mut acc = 0usize;
    for (i, r) in reads.iter().enumerate() {
        acc += r.approx_bytes();
        if acc >= batch_bytes {
            ranges.push(start..i + 1);
            start = i + 1;
            acc = 0;
        }
    }
    if start < reads.len() {
        ranges.push(start..reads.len());
    }
    ranges
}

/// Step 1 of ParaHash: pipelined, co-processed MSP partitioning of an
/// in-memory read set.
///
/// Input batches flow through the three-stage pipeline; whichever device
/// is idle scans a batch into superkmers (each read's scan is one
/// data-parallel item — one GPU lane per read, one CPU thread per group,
/// as in §III-D), encodes them to the 2-bit record format, and the output
/// stage appends the bytes to the per-partition files.
///
/// Returns the partition manifest (input to Step 2) and the step report.
///
/// # Errors
///
/// Propagates partition-file I/O failures and invalid parameters.
pub fn run_step1(
    config: &ParaHashConfig,
    reads: &[SeqRead],
    io: &ThrottledIo,
) -> Result<(PartitionManifest, StepReport)> {
    let ranges = batch_ranges(reads, config.read_batch_bytes);
    let peak_batch = AtomicU64::new(0);
    let cancel = CancelToken::new();
    let result = run_step1_batches(config, ranges.len(), |i| {
        let batch = &reads[ranges[i].clone()];
        let bytes: usize = batch.iter().map(SeqRead::approx_bytes).sum();
        peak_batch.fetch_max(bytes as u64, Ordering::Relaxed);
        io.charge(bytes as u64);
        batch
    }, io, &cancel);
    finalize_peak(result, peak_batch.into_inner())
}

/// Streaming Step 1 over a FASTQ file: the input stage parses one batch
/// of reads at a time, so the whole read set is **never resident in
/// memory** — the property the paper's partition-by-partition workflow
/// (Fig 3) depends on for big genomes. A cheap indexing pre-pass counts
/// records per batch (the "partition the input file to equal size" cut);
/// the pipeline then re-reads the file batch by batch.
///
/// # Errors
///
/// Propagates FASTQ parse failures (as [`crate::ParaHashError::Msp`] is
/// *not* used here — malformed records surface as
/// [`crate::ParaHashError::InvalidConfig`] with the parser's message) and
/// partition-file I/O failures.
pub fn run_step1_fastq(
    config: &ParaHashConfig,
    path: impl AsRef<std::path::Path>,
    io: &ThrottledIo,
) -> Result<(PartitionManifest, StepReport)> {
    use std::io::BufReader;

    let path = path.as_ref();
    // Pass 1: index — records per batch, cut at ~read_batch_bytes of
    // sequence text.
    let mut batch_records: Vec<usize> = Vec::new();
    {
        let reader = dna::FastqReader::new(BufReader::new(std::fs::File::open(path)?));
        let mut records = 0usize;
        let mut bytes = 0usize;
        for record in reader {
            let record = record.map_err(parse_error)?;
            records += 1;
            bytes += record.approx_bytes();
            if bytes >= config.read_batch_bytes {
                batch_records.push(records);
                records = 0;
                bytes = 0;
            }
        }
        if records > 0 {
            batch_records.push(records);
        }
    }

    // Pass 2: the pipeline; the input stage parses sequentially.
    let mut reader = dna::FastqReader::new(BufReader::new(std::fs::File::open(path)?));
    let peak_batch = AtomicU64::new(0);
    let parse_failure: OnceError<crate::ParaHashError> = OnceError::new();
    let cancel = CancelToken::new();
    let result = {
        let parse_failure = &parse_failure;
        let peak_batch = &peak_batch;
        let cancel_ref = &cancel;
        run_step1_batches(
            config,
            batch_records.len(),
            move |i| {
                let mut batch = Vec::with_capacity(batch_records[i]);
                let mut bytes = 0usize;
                for _ in 0..batch_records[i] {
                    match reader.read_record() {
                        Ok(Some(read)) => {
                            bytes += read.approx_bytes();
                            batch.push(read);
                        }
                        Ok(None) => break,
                        Err(e) => {
                            // A parse failure poisons everything after it
                            // (the stream position is lost): stop feeding
                            // the pipeline rather than scanning the rest.
                            parse_failure.set(parse_error(e));
                            cancel_ref.cancel();
                            break;
                        }
                    }
                }
                peak_batch.fetch_max(bytes as u64, Ordering::Relaxed);
                io.charge(bytes as u64);
                batch
            },
            io,
            cancel_ref,
        )
    };
    if let Some(e) = parse_failure.into_inner() {
        // Abandon the partial partition directory: it covers an unknown
        // prefix of the input.
        let _ = std::fs::remove_dir_all(config.work_dir.join("superkmers"));
        return Err(e);
    }
    finalize_peak(result, peak_batch.into_inner())
}

fn parse_error(e: dna::DnaError) -> crate::ParaHashError {
    match e {
        dna::DnaError::Io(io) => crate::ParaHashError::Io(io),
        other => crate::ParaHashError::InvalidConfig(format!("bad fastq input: {other}")),
    }
}

fn finalize_peak(
    result: Result<(PartitionManifest, StepReport)>,
    peak: u64,
) -> Result<(PartitionManifest, StepReport)> {
    result.map(|(manifest, mut report)| {
        report.peak_partition_bytes = peak;
        (manifest, report)
    })
}

/// The shared Step-1 pipeline over any batch source (in-memory slices or
/// a streaming parser).
fn run_step1_batches<B, FP>(
    config: &ParaHashConfig,
    n_batches: usize,
    produce: FP,
    io: &ThrottledIo,
    cancel: &CancelToken,
) -> Result<(PartitionManifest, StepReport)>
where
    B: AsRef<[SeqRead]> + Send,
    FP: FnMut(usize) -> B + Send,
{
    let scanner = SuperkmerScanner::new(config.k, config.p)?;
    let router = PartitionRouter::new(config.partitions)?;
    let dir = config.work_dir.join("superkmers");
    let mut writer = PartitionWriter::create(&dir, config.partitions, config.k, config.p)?;
    let write_error: OnceError<msp::MspError> = OnceError::new();

    let pipeline_report = {
        let scanner = &scanner;
        let router = &router;
        let writer = &mut writer;
        let write_error = &write_error;
        run_coprocessed_with(
            n_batches,
            config.devices(),
            cancel,
            produce,
            // Stage 2: scan + encode on an idle device.
            |device: &dyn Device, _idx, batch: B| {
                let batch = batch.as_ref();
                let n_parts = router.num_partitions();
                let buffers: Vec<Mutex<Vec<u8>>> = (0..n_parts).map(|_| Mutex::new(Vec::new())).collect();
                let sk_counts: Vec<AtomicU64> = (0..n_parts).map(|_| AtomicU64::new(0)).collect();
                let km_counts: Vec<AtomicU64> = (0..n_parts).map(|_| AtomicU64::new(0)).collect();
                let emit = |sk: &msp::Superkmer, local: &mut Vec<u8>| {
                    let part = router.route(sk);
                    local.clear();
                    encode_superkmer(sk, local);
                    buffers[part].lock().extend_from_slice(local);
                    sk_counts[part].fetch_add(1, Ordering::Relaxed);
                    km_counts[part].fetch_add(sk.kmer_count() as u64, Ordering::Relaxed);
                };
                if device.kind() == DeviceKind::SimGpu {
                    // The paper's §III-D split: reads travel to the device
                    // 2-bit encoded (¼ byte per base), the *kernel* only
                    // computes superkmer ids and offsets (regular,
                    // fixed-width output), and the irregular memory
                    // movement — materialising and encoding superkmers —
                    // stays on the host.
                    let encoded: u64 = batch.iter().map(|r| r.len() as u64 / 4 + 1).sum();
                    device.transfer_to_device(encoded);
                    let boundaries: Vec<Mutex<Vec<(usize, usize, dna::Kmer)>>> =
                        (0..batch.len()).map(|_| Mutex::new(Vec::new())).collect();
                    device.execute(batch.len(), &|i| {
                        *boundaries[i].lock() = scanner.scan_boundaries(batch[i].seq());
                    });
                    let mut local = Vec::with_capacity(64);
                    for (read, bounds) in batch.iter().zip(&boundaries) {
                        for sk in
                            scanner.superkmers_from_boundaries(read.seq(), &bounds.lock())
                        {
                            emit(&sk, &mut local);
                        }
                    }
                } else {
                    device.execute(batch.len(), &|i| {
                        let mut local = Vec::with_capacity(64);
                        for sk in scanner.scan(batch[i].seq()) {
                            emit(&sk, &mut local);
                        }
                    });
                }
                let buffers: Vec<Vec<u8>> = buffers.into_iter().map(Mutex::into_inner).collect();
                if device.kind() == DeviceKind::SimGpu {
                    let out_bytes: u64 = buffers.iter().map(|b| b.len() as u64).sum();
                    device.transfer_from_device(out_bytes);
                }
                let counts: Vec<(u64, u64)> = sk_counts
                    .iter()
                    .zip(&km_counts)
                    .map(|(s, k)| (s.load(Ordering::Relaxed), k.load(Ordering::Relaxed)))
                    .collect();
                (Batch1Out { buffers, counts }, batch.len() as u64)
            },
            // Stage 3: append encoded bytes to the partition files.
            |_idx, out: Batch1Out| {
                for (part, bytes) in out.buffers.iter().enumerate() {
                    if bytes.is_empty() {
                        continue;
                    }
                    let (sks, kms) = out.counts[part];
                    io.charge(bytes.len() as u64);
                    if let Err(e) = writer.append_encoded(part, bytes, sks, kms) {
                        // A failed append means the partition files no
                        // longer match the stats; abandon the run now
                        // rather than scanning the remaining batches.
                        write_error.set(e);
                        cancel.cancel();
                    }
                }
            },
        )
    };

    if let Some(e) = write_error.into_inner() {
        // The partition directory holds an inconsistent prefix — remove
        // it so Step 2 can never be pointed at it.
        drop(writer);
        let _ = std::fs::remove_dir_all(&dir);
        return Err(e.into());
    }
    let manifest = writer.finish()?;

    let (cpu_compute, gpu_compute) = split_device_times(config, &pipeline_report.shares);
    Ok((
        manifest,
        StepReport {
            step: 1,
            pipeline: pipeline_report,
            cpu_compute,
            gpu_compute,
            contention: None,
            resizes: 0,
            peak_partition_bytes: 0, // filled in by the caller
            peak_table_bytes: 0,     // Step 1 allocates no hash tables
            quarantined: Vec::new(),
        },
    ))
}

/// Splits per-device busy time into the model's `T_CPU` (sum over CPU
/// devices) and `T_GPU` (max over GPU devices, paper §IV-B).
pub(crate) fn split_device_times(
    config: &ParaHashConfig,
    shares: &[pipeline::DeviceShare],
) -> (Duration, Duration) {
    let mut cpu = Duration::ZERO;
    let mut gpu = Duration::ZERO;
    for (device, share) in config.devices().iter().zip(shares) {
        match device.kind() {
            DeviceKind::Cpu => cpu += share.busy,
            DeviceKind::SimGpu => gpu = gpu.max(share.busy),
        }
    }
    (cpu, gpu)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipeline::IoMode;

    fn reads() -> Vec<SeqRead> {
        vec![
            SeqRead::from_ascii("a", b"ACGTTGCATGGACCAGTTACGGATCAGGCATT"),
            SeqRead::from_ascii("b", b"TGATGGATGATGGATGGTAGCATACGTTGCAT"),
            SeqRead::from_ascii("c", b"GGCATTAGCCAGTACGGATCACCGTATGCAAT"),
            SeqRead::from_ascii("d", b"TTTTGGGGCCCCAAAATTTTGGGGCCCCAAAA"),
        ]
    }

    fn config(dir: &str) -> ParaHashConfig {
        ParaHashConfig::builder()
            .k(7)
            .p(4)
            .partitions(8)
            .cpu_threads(2)
            .read_batch_bytes(64)
            .work_dir(std::env::temp_dir().join(dir))
            .build()
            .unwrap()
    }

    #[test]
    fn batch_ranges_cover_everything_once() {
        let rs = reads();
        for bytes in [1, 40, 1000] {
            let ranges = batch_ranges(&rs, bytes);
            let mut covered = Vec::new();
            for r in &ranges {
                covered.extend(r.clone());
            }
            assert_eq!(covered, (0..rs.len()).collect::<Vec<_>>(), "batch_bytes={bytes}");
        }
        assert!(batch_ranges(&[], 100).is_empty());
    }

    #[test]
    fn step1_writes_all_kmers() {
        let cfg = config("parahash-step1-all");
        let _ = std::fs::remove_dir_all(cfg.work_dir());
        let io = ThrottledIo::new(IoMode::Unthrottled);
        let rs = reads();
        let (manifest, report) = run_step1(&cfg, &rs, &io).unwrap();
        let expected_kmers: u64 = rs.iter().map(|r| (r.len() - 7 + 1) as u64).sum();
        assert_eq!(manifest.total_kmers(), expected_kmers);
        assert_eq!(report.pipeline.total_work(), rs.len() as u64);
        assert!(report.peak_partition_bytes > 0);
        assert_eq!(report.step, 1);
        std::fs::remove_dir_all(cfg.work_dir()).unwrap();
    }

    #[test]
    fn step1_matches_in_memory_partitioning() {
        let cfg = config("parahash-step1-match");
        let _ = std::fs::remove_dir_all(cfg.work_dir());
        let io = ThrottledIo::new(IoMode::Unthrottled);
        let rs = reads();
        let (manifest, _) = run_step1(&cfg, &rs, &io).unwrap();

        let seqs: Vec<dna::PackedSeq> = rs.iter().map(|r| r.seq().clone()).collect();
        let expected = msp::partition_in_memory(&seqs, 7, 4, 8).unwrap();
        for (i, want) in expected.iter().enumerate() {
            let mut got = msp::PartitionReader::open(&manifest, i).unwrap().read_all().unwrap();
            let mut want = want.clone();
            // The pipeline may interleave batches; compare as multisets.
            got.sort_by(|a, b| a.core().cmp(b.core()));
            want.sort_by(|a, b| a.core().cmp(b.core()));
            assert_eq!(got, want, "partition {i}");
        }
        std::fs::remove_dir_all(cfg.work_dir()).unwrap();
    }

    #[test]
    fn step1_with_gpu_transfers_bytes() {
        let cfg = ParaHashConfig::builder()
            .k(7)
            .p(4)
            .partitions(4)
            .cpu_threads(1)
            .sim_gpu(hetsim::SimGpuConfig {
                transfer: hetsim::TransferModel::new(100_000_000, Duration::from_micros(1)),
                ..Default::default()
            })
            .read_batch_bytes(32)
            .work_dir(std::env::temp_dir().join("parahash-step1-gpu"))
            .build()
            .unwrap();
        let _ = std::fs::remove_dir_all(cfg.work_dir());
        let io = ThrottledIo::new(IoMode::Unthrottled);
        let (_, report) = run_step1(&cfg, &reads(), &io).unwrap();
        let gpu_metrics = cfg.devices()[1].metrics();
        let gpu_share = &report.pipeline.shares[1];
        if gpu_share.partitions > 0 {
            assert!(gpu_metrics.bytes_to_device > 0, "gpu must pay input transfers");
        }
        std::fs::remove_dir_all(cfg.work_dir()).unwrap();
    }

    #[test]
    fn short_reads_are_skipped_cleanly() {
        let cfg = config("parahash-step1-short");
        let _ = std::fs::remove_dir_all(cfg.work_dir());
        let io = ThrottledIo::new(IoMode::Unthrottled);
        let rs = vec![SeqRead::from_ascii("tiny", b"ACG"), SeqRead::from_ascii("ok", b"ACGTTGCAT")];
        let (manifest, _) = run_step1(&cfg, &rs, &io).unwrap();
        assert_eq!(manifest.total_kmers(), 3); // only the 9-mer read yields 9−7+1
        std::fs::remove_dir_all(cfg.work_dir()).unwrap();
    }
}
