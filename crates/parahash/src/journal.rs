//! The journaled run manifest: `run.journal`.
//!
//! A ParaHash run on a big input takes hours; without a durable record
//! of progress, any process death throws away every completed partition
//! and subgraph. The journal is that record: an **append-only** file in
//! the work directory, one CRC-framed record per event, fsynced after
//! every append so a record either survives whole or not at all.
//!
//! ```text
//! record  := u32 payload_len (LE) | u32 crc32(payload) (LE) | payload
//! payload := one UTF-8 line (no trailing newline):
//!     "config <k> <p> <partitions> <input-digest-hex>"   (first record)
//!     "partition-sealed <i>"
//!     "subgraph-committed <i>"
//!     "quarantined <i> <reason…>"
//!     "tuner-state <gpu-share-milli> <regime>"
//!     "run-complete"
//! ```
//!
//! Replay reads the longest valid prefix: the *final* record of a
//! crashed run is routinely torn (the process died mid-append), so a
//! short or checksum-failing record **at the tail** is tolerated and
//! reported via [`JournalState::torn_tail`]; resume truncates the file
//! back to the valid prefix before appending. The framing reuses the
//! partition-file CRC-32 ([`msp::crc32`]), and the full format is
//! documented in `docs/FORMATS.md` / `docs/RECOVERY.md`.
//!
//! Events may be appended from multiple threads (the fused pipeline
//! seals partitions on one thread while Step 2 commits subgraphs on
//! another); the journal serialises appends behind a mutex.

use std::collections::BTreeSet;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use parking_lot::Mutex;
use pipeline::perfmodel::Regime;
use pipeline::{commit, failpoint, TunerWarmStart};

use crate::{ParaHashError, Result};

/// File name of the journal inside the work directory.
pub const JOURNAL_FILE: &str = "run.journal";

/// Identity of a run: the parameters and input whose artifacts the
/// journal describes. Resuming under a different fingerprint is refused
/// ([`ParaHashError::FingerprintMismatch`]) — partition files cut for a
/// different `k`/`p`/`partitions`/input would silently corrupt the
/// graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fingerprint {
    /// K-mer length.
    pub k: usize,
    /// Minimizer length.
    pub p: usize,
    /// Number of partitions.
    pub partitions: usize,
    /// FNV-1a digest of the input (see [`Fingerprint::digest_bytes`]).
    pub input_digest: u64,
}

/// Tiny FNV-1a (64-bit) accumulator backing the fingerprint digests.
struct Fnv(u64);

impl Fnv {
    const PRIME: u64 = 0x0000_0100_0000_01B3;

    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Chunk separator so `["ab","c"] != ["a","bc"]`.
    fn sep(&mut self) {
        self.0 ^= 0xFF;
        self.0 = self.0.wrapping_mul(Self::PRIME);
    }
}

impl Fingerprint {
    /// FNV-1a (64-bit) over a byte stream — stable, dependency-free, and
    /// plenty for distinguishing "same input" from "different input"
    /// (this is a config check, not an integrity check; artifact
    /// integrity is CRC-verified separately).
    pub fn digest_bytes<'a>(chunks: impl IntoIterator<Item = &'a [u8]>) -> u64 {
        let mut h = Fnv::new();
        for chunk in chunks {
            h.update(chunk);
            h.sep();
        }
        h.0
    }

    /// Digest of an in-memory read set: every read's id, length and
    /// packed sequence words, in order. Reordering, renaming or editing
    /// any read changes the digest.
    pub fn digest_reads(reads: &[dna::SeqRead]) -> u64 {
        let mut h = Fnv::new();
        for r in reads {
            h.update(r.id().as_bytes());
            h.sep();
            h.update(&(r.len() as u64).to_le_bytes());
            for w in r.seq().words() {
                h.update(&w.to_le_bytes());
            }
            h.sep();
        }
        h.0
    }

    /// Digest of a streamed input file the run never holds in memory:
    /// the path string plus the file length. Deliberately cheap — a
    /// streamed input is exactly the input too big to re-read for a
    /// checksum — so this catches "pointed the resume at a different
    /// file", not in-place edits that preserve the length.
    ///
    /// # Errors
    ///
    /// Propagates the `metadata` failure when the file is unreadable.
    pub fn digest_path(path: &Path) -> std::io::Result<u64> {
        let len = std::fs::metadata(path)?.len();
        let mut h = Fnv::new();
        h.update(path.to_string_lossy().as_bytes());
        h.sep();
        h.update(&len.to_le_bytes());
        h.sep();
        Ok(h.0)
    }

    /// 16-hex-digit run-scope token derived from the fingerprint. Used
    /// to suffix long-lived staging files (`part-*.skm.{token}.tmp`) so
    /// recovery sweeps reclaim only *this* run's leftovers and never a
    /// concurrent run's live staging in a shared output directory.
    /// Stable across a crash + resume of the same run (same parameters,
    /// same input → same token); two runs with identical fingerprints in
    /// one directory remain unsupported, as before.
    pub fn token(&self) -> String {
        let mut h = Fnv::new();
        for field in [self.k as u64, self.p as u64, self.partitions as u64, self.input_digest] {
            h.update(&field.to_le_bytes());
            h.sep();
        }
        format!("{:016x}", h.0)
    }
}

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "(k={}, p={}, partitions={}, input={:016x})",
            self.k, self.p, self.partitions, self.input_digest
        )
    }
}

/// One journal event (everything after the leading `config` record).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalEvent {
    /// Partition `i`'s superkmer file (or resident payload) is complete
    /// and its bytes are committed/consumable.
    PartitionSealed(usize),
    /// Partition `i`'s subgraph file is committed on disk (atomic
    /// rename completed). Only recorded when subgraph persistence is on.
    SubgraphCommitted(usize),
    /// Partition `i` was quarantined (non-strict mode) with a reason.
    Quarantined(usize, String),
    /// The autotuner's converged state at run end: GPU work-share in
    /// thousandths and the classified regime. A resumed run warm-starts
    /// its tuner (and its memory budget) from this instead of re-probing.
    TunerState(TunerState),
    /// Partition `i`'s projected table busted the memory budget and its
    /// build went out of core through `fanout` second-level
    /// sub-partitions. Informational: the merged subgraph is
    /// byte-identical either way, so resume needs no special handling —
    /// the record explains memory behaviour post hoc and lets reports
    /// attribute the extra split work.
    SubSplit(usize, usize),
    /// The sharded Step 2 leased partition `i` to worker `w`. Appended
    /// by the parent *before* the assignment is sent, so a journal
    /// replay after a crash shows exactly which partitions were in
    /// flight (their `subgraph-committed` records are what prove
    /// completion, exactly as in-process).
    WorkerLease(usize, usize),
    /// The run finished; every artifact the config asked for exists.
    RunComplete,
}

/// Journal-durable autotuner state (see [`JournalEvent::TunerState`]).
/// The share is kept in integer thousandths so the record — and
/// [`JournalState`] equality — stays exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TunerState {
    /// GPU work-share in thousandths (0..=1000).
    pub gpu_share_milli: u32,
    /// The regime the run converged to.
    pub regime: Regime,
}

impl TunerState {
    /// Quantises a measured share + regime for journaling.
    pub fn quantise(gpu_share: f64, regime: Regime) -> TunerState {
        TunerState {
            gpu_share_milli: (gpu_share.clamp(0.0, 1.0) * 1000.0).round() as u32,
            regime,
        }
    }

    /// The warm-start value a fresh [`pipeline::SplitTuner`] takes.
    pub fn warm_start(&self) -> TunerWarmStart {
        TunerWarmStart { gpu_share: self.gpu_share_milli as f64 / 1000.0, regime: self.regime }
    }
}

fn regime_tag(regime: Regime) -> &'static str {
    match regime {
        Regime::ComputeBound => "compute-bound",
        Regime::IoBound => "io-bound",
        Regime::Mixed => "mixed",
    }
}

fn parse_regime_tag(tag: &str) -> Option<Regime> {
    match tag {
        "compute-bound" => Some(Regime::ComputeBound),
        "io-bound" => Some(Regime::IoBound),
        "mixed" => Some(Regime::Mixed),
        _ => None,
    }
}

impl JournalEvent {
    fn to_line(&self) -> String {
        match self {
            JournalEvent::PartitionSealed(i) => format!("partition-sealed {i}"),
            JournalEvent::SubgraphCommitted(i) => format!("subgraph-committed {i}"),
            JournalEvent::Quarantined(i, reason) => {
                // Keep the line-oriented payload parseable.
                format!("quarantined {i} {}", reason.replace(['\n', '\r'], " "))
            }
            JournalEvent::TunerState(t) => {
                format!("tuner-state {} {}", t.gpu_share_milli, regime_tag(t.regime))
            }
            JournalEvent::SubSplit(i, fanout) => format!("sub-split {i} {fanout}"),
            JournalEvent::WorkerLease(worker, i) => format!("worker-lease {worker} {i}"),
            JournalEvent::RunComplete => "run-complete".to_string(),
        }
    }
}

/// What a journal replay found: the run's fingerprint plus the set of
/// durable progress marks, ready for resume planning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalState {
    /// Fingerprint from the leading `config` record.
    pub fingerprint: Fingerprint,
    /// Partitions with a `partition-sealed` record.
    pub sealed: BTreeSet<usize>,
    /// Partitions with a `subgraph-committed` record.
    pub committed: BTreeSet<usize>,
    /// Quarantine marks, in append order (later marks for the same
    /// partition override earlier ones).
    pub quarantined: Vec<(usize, String)>,
    /// The last `tuner-state` record, if the run got far enough to write
    /// one (the tuner's converged split + regime, for warm starts).
    pub tuner: Option<TunerState>,
    /// `sub-split` marks in append order: `(partition, fanout)` pairs
    /// recording which partitions went out of core (a later mark for the
    /// same partition overrides an earlier one, e.g. a retry that picked
    /// a different fanout).
    pub sub_splits: Vec<(usize, usize)>,
    /// `worker-lease` marks in append order: `(worker, partition)` pairs
    /// from the sharded Step 2's assignment log.
    pub leases: Vec<(usize, usize)>,
    /// Whether a `run-complete` record was found.
    pub complete: bool,
    /// Length of the valid record prefix, in bytes. Equal to the file
    /// length for a cleanly-written journal.
    pub valid_bytes: u64,
    /// `true` when bytes beyond `valid_bytes` existed but did not form a
    /// whole valid record — the expected signature of a crash
    /// mid-append. Resume truncates them.
    pub torn_tail: bool,
}

/// Append-only, CRC-framed, fsync-per-record run journal. See the
/// [module docs](self).
#[derive(Debug)]
pub struct RunJournal {
    path: PathBuf,
    file: Mutex<File>,
}

impl RunJournal {
    /// The journal path for a work directory.
    pub fn path_in(work_dir: &Path) -> PathBuf {
        work_dir.join(JOURNAL_FILE)
    }

    /// Starts a fresh journal for a new run: truncates any previous
    /// journal and durably writes the `config` fingerprint record.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures (including an armed `journal.append`
    /// failpoint).
    pub fn create(work_dir: &Path, fingerprint: Fingerprint) -> Result<RunJournal> {
        std::fs::create_dir_all(work_dir)?;
        let path = Self::path_in(work_dir);
        let file = OpenOptions::new().create(true).write(true).truncate(true).open(&path)?;
        let journal = RunJournal { path, file: Mutex::new(file) };
        journal.append_line(&format!(
            "config {} {} {} {:016x}",
            fingerprint.k, fingerprint.p, fingerprint.partitions, fingerprint.input_digest
        ))?;
        if let Some(dir) = journal.path.parent() {
            commit::sync_dir(dir);
        }
        Ok(journal)
    }

    /// Reopens an existing journal for appending after a replay:
    /// truncates the file to `state.valid_bytes` (dropping a torn tail)
    /// and positions the cursor at the end.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn reopen(work_dir: &Path, state: &JournalState) -> Result<RunJournal> {
        let path = Self::path_in(work_dir);
        let file = OpenOptions::new().write(true).open(&path)?;
        file.set_len(state.valid_bytes)?;
        file.sync_all()?;
        let mut file = file;
        use std::io::Seek;
        file.seek(std::io::SeekFrom::End(0))?;
        Ok(RunJournal { path, file: Mutex::new(file) })
    }

    /// Appends one event record and fsyncs it. Thread-safe.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures (including an armed `journal.append`
    /// failpoint).
    pub fn append(&self, event: &JournalEvent) -> Result<()> {
        self.append_line(&event.to_line())
    }

    fn append_line(&self, line: &str) -> Result<()> {
        failpoint::hit("journal.append")?;
        let payload = line.as_bytes();
        let mut record = Vec::with_capacity(8 + payload.len());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&msp::crc32(payload).to_le_bytes());
        record.extend_from_slice(payload);
        let file = self.file.lock();
        let mut f = &*file;
        f.write_all(&record)?;
        f.sync_data()?;
        Ok(())
    }

    /// Reopens the journal in `work_dir` when it belongs to this run
    /// (same fingerprint, replayable), otherwise starts a fresh one.
    /// This is how a *reconnecting* shard worker keeps its committed
    /// records across connection drops: `create` would truncate them,
    /// destroying exactly the evidence cluster-wide resume aggregates.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures of whichever path is taken.
    pub fn open_or_create(work_dir: &Path, fingerprint: Fingerprint) -> Result<RunJournal> {
        if Self::exists(work_dir) {
            if let Ok(state) = Self::replay(work_dir) {
                if state.fingerprint == fingerprint {
                    return Self::reopen(work_dir, &state);
                }
            }
        }
        Self::create(work_dir, fingerprint)
    }

    /// Whether a journal exists in `work_dir`.
    pub fn exists(work_dir: &Path) -> bool {
        Self::path_in(work_dir).is_file()
    }

    /// Whether the journal in `work_dir` holds no complete record — the
    /// signature of a crash during creation, before even the `config`
    /// record became durable. A vacant journal carries no information,
    /// so resume treats it exactly like a missing one.
    ///
    /// # Errors
    ///
    /// Propagates the read failure when the file cannot be opened.
    pub fn is_vacant(work_dir: &Path) -> std::io::Result<bool> {
        let mut bytes = Vec::new();
        File::open(Self::path_in(work_dir))?.read_to_end(&mut bytes)?;
        let (lines, _, _) = scan_records(&bytes);
        Ok(lines.is_empty())
    }

    /// Replays the journal in `work_dir`: parses the longest valid
    /// record prefix into a [`JournalState`], tolerating a torn final
    /// record (see the [module docs](self)).
    ///
    /// # Errors
    ///
    /// [`ParaHashError::Io`] when the journal cannot be read, and
    /// [`ParaHashError::Journal`] when a *valid-CRC* record is
    /// malformed (unknown event, missing `config` header, out-of-range
    /// index) — damage a crash cannot explain.
    pub fn replay(work_dir: &Path) -> Result<JournalState> {
        let path = Self::path_in(work_dir);
        let mut bytes = Vec::new();
        File::open(&path)?.read_to_end(&mut bytes)?;
        let (lines, valid_bytes, torn_tail) = scan_records(&bytes);

        let journal_err = |offset: u64, reason: String| ParaHashError::Journal { offset, reason };
        let mut it = lines.into_iter();
        let Some((off0, config_line)) = it.next() else {
            return Err(journal_err(0, "journal holds no complete record".into()));
        };
        let fields: Vec<&str> = config_line.split_whitespace().collect();
        let fingerprint = match fields.as_slice() {
            ["config", k, p, n, digest] => {
                let parse = |s: &str, what: &str| -> Result<usize> {
                    s.parse().map_err(|e| journal_err(off0, format!("bad {what}: {e}")))
                };
                Fingerprint {
                    k: parse(k, "k")?,
                    p: parse(p, "p")?,
                    partitions: parse(n, "partitions")?,
                    input_digest: u64::from_str_radix(digest, 16)
                        .map_err(|e| journal_err(off0, format!("bad input digest: {e}")))?,
                }
            }
            _ => {
                return Err(journal_err(
                    off0,
                    format!("first record must be `config <k> <p> <partitions> <digest>`, got {config_line:?}"),
                ))
            }
        };

        let mut state = JournalState {
            fingerprint,
            sealed: BTreeSet::new(),
            committed: BTreeSet::new(),
            quarantined: Vec::new(),
            tuner: None,
            sub_splits: Vec::new(),
            leases: Vec::new(),
            complete: false,
            valid_bytes,
            torn_tail,
        };
        let index_in_range = |idx: &str, off: u64, what: &str| -> Result<usize> {
            let i: usize =
                idx.parse().map_err(|e| journal_err(off, format!("bad {what} index: {e}")))?;
            if i >= fingerprint.partitions {
                return Err(journal_err(
                    off,
                    format!("{what} index {i} out of range (partitions {})", fingerprint.partitions),
                ));
            }
            Ok(i)
        };
        for (off, line) in it {
            if let Some(rest) = line.strip_prefix("partition-sealed ") {
                state.sealed.insert(index_in_range(rest.trim(), off, "partition-sealed")?);
            } else if let Some(rest) = line.strip_prefix("subgraph-committed ") {
                state.committed.insert(index_in_range(rest.trim(), off, "subgraph-committed")?);
            } else if let Some(rest) = line.strip_prefix("quarantined ") {
                let (idx, reason) = rest.split_once(' ').unwrap_or((rest, ""));
                let i = index_in_range(idx, off, "quarantined")?;
                state.quarantined.push((i, reason.to_string()));
            } else if let Some(rest) = line.strip_prefix("tuner-state ") {
                let (milli, tag) = rest
                    .split_once(' ')
                    .ok_or_else(|| journal_err(off, format!("bad tuner-state record {rest:?}")))?;
                let gpu_share_milli: u32 = milli
                    .parse()
                    .map_err(|e| journal_err(off, format!("bad tuner-state share: {e}")))?;
                if gpu_share_milli > 1000 {
                    return Err(journal_err(
                        off,
                        format!("tuner-state share {gpu_share_milli} exceeds 1000 thousandths"),
                    ));
                }
                let regime = parse_regime_tag(tag)
                    .ok_or_else(|| journal_err(off, format!("unknown tuner-state regime {tag:?}")))?;
                state.tuner = Some(TunerState { gpu_share_milli, regime });
            } else if let Some(rest) = line.strip_prefix("sub-split ") {
                let (idx, fanout) = rest
                    .split_once(' ')
                    .ok_or_else(|| journal_err(off, format!("bad sub-split record {rest:?}")))?;
                let i = index_in_range(idx, off, "sub-split")?;
                let fanout: usize = fanout
                    .trim()
                    .parse()
                    .map_err(|e| journal_err(off, format!("bad sub-split fanout: {e}")))?;
                if fanout < 2 {
                    return Err(journal_err(off, format!("sub-split fanout {fanout} below 2")));
                }
                state.sub_splits.push((i, fanout));
            } else if let Some(rest) = line.strip_prefix("worker-lease ") {
                let (worker, idx) = rest
                    .split_once(' ')
                    .ok_or_else(|| journal_err(off, format!("bad worker-lease record {rest:?}")))?;
                let worker: usize = worker
                    .parse()
                    .map_err(|e| journal_err(off, format!("bad worker-lease worker: {e}")))?;
                let i = index_in_range(idx.trim(), off, "worker-lease")?;
                state.leases.push((worker, i));
            } else if line == "run-complete" {
                state.complete = true;
            } else {
                return Err(journal_err(off, format!("unknown journal event {line:?}")));
            }
        }
        Ok(state)
    }
}

/// Aggregates the per-worker journals under `work_dir` (every
/// `worker-<id>/run.journal` the sharded Step 2 leaves behind) into the
/// set of partitions those workers durably committed, filtered to
/// journals whose fingerprint matches `fingerprint`.
///
/// This is the cluster-wide half of resume: when the *parent* crashed
/// mid-distribution, its own `run.journal` may be missing
/// `subgraph-committed` records for partitions a worker finished and
/// journaled but never got to report. Merging the worker journals in
/// means those partitions are not re-shipped or rebuilt — the committed
/// subgraph files are still re-verified byte-for-byte by the resume
/// planner before being trusted, exactly like the parent's own records.
///
/// Best-effort by design: an unreadable, torn-beyond-repair, or
/// foreign-fingerprint worker journal contributes nothing (resume then
/// simply rebuilds those partitions), so this never fails.
pub fn worker_committed(work_dir: &Path, fingerprint: &Fingerprint) -> BTreeSet<usize> {
    let mut committed = BTreeSet::new();
    let Ok(entries) = std::fs::read_dir(work_dir) else { return committed };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if !name.starts_with("worker-") || !name["worker-".len()..].chars().all(|c| c.is_ascii_digit())
        {
            continue;
        }
        let dir = entry.path();
        if !RunJournal::exists(&dir) {
            continue;
        }
        if let Ok(state) = RunJournal::replay(&dir) {
            if state.fingerprint == *fingerprint {
                committed.extend(state.committed.iter().copied());
            }
        }
    }
    committed
}

/// Frame-scans raw journal bytes: returns the longest valid record
/// prefix as `(byte offset, payload line)` pairs, the prefix length in
/// bytes, and whether trailing bytes beyond it were refused (the torn
/// tail). Pure framing — no semantic interpretation of the lines.
fn scan_records(bytes: &[u8]) -> (Vec<(u64, String)>, u64, bool) {
    let mut pos = 0usize;
    let mut lines: Vec<(u64, String)> = Vec::new();
    let mut torn_tail = false;
    while pos < bytes.len() {
        // A record that does not fully verify is, by definition, the
        // torn tail: stop trusting the file here.
        let Some(rest) = bytes.get(pos..) else { break };
        if rest.len() < 8 {
            torn_tail = true;
            break;
        }
        let len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
        let want = u32::from_le_bytes(rest[4..8].try_into().unwrap());
        let Some(payload) = rest.get(8..8 + len) else {
            torn_tail = true;
            break;
        };
        if msp::crc32(payload) != want {
            torn_tail = true;
            break;
        }
        let line = match std::str::from_utf8(payload) {
            Ok(s) => s.to_string(),
            Err(_) => {
                torn_tail = true;
                break;
            }
        };
        lines.push((pos as u64, line));
        pos += 8 + len;
    }
    let valid_bytes = pos.min(bytes.len()) as u64;
    // `torn_tail` is also true when valid records were followed by
    // *any* trailing bytes refused above.
    let torn_tail = torn_tail || (valid_bytes as usize) < bytes.len();
    (lines, valid_bytes, torn_tail)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("parahash-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn fp() -> Fingerprint {
        Fingerprint { k: 7, p: 4, partitions: 6, input_digest: 0xDEAD_BEEF_0123_4567 }
    }

    #[test]
    fn roundtrip_events() {
        let dir = tmpdir("roundtrip");
        let j = RunJournal::create(&dir, fp()).unwrap();
        j.append(&JournalEvent::PartitionSealed(0)).unwrap();
        j.append(&JournalEvent::PartitionSealed(3)).unwrap();
        j.append(&JournalEvent::SubgraphCommitted(0)).unwrap();
        j.append(&JournalEvent::Quarantined(2, "checksum mismatch\nmultiline".into())).unwrap();
        j.append(&JournalEvent::RunComplete).unwrap();
        drop(j);
        let state = RunJournal::replay(&dir).unwrap();
        assert_eq!(state.fingerprint, fp());
        assert_eq!(state.sealed, BTreeSet::from([0, 3]));
        assert_eq!(state.committed, BTreeSet::from([0]));
        assert_eq!(state.quarantined, vec![(2, "checksum mismatch multiline".to_string())]);
        assert!(state.complete);
        assert!(!state.torn_tail);
        assert_eq!(state.valid_bytes, std::fs::metadata(RunJournal::path_in(&dir)).unwrap().len());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sub_split_and_worker_lease_roundtrip() {
        let dir = tmpdir("shard-events");
        let j = RunJournal::create(&dir, fp()).unwrap();
        j.append(&JournalEvent::WorkerLease(0, 5)).unwrap();
        j.append(&JournalEvent::WorkerLease(1, 2)).unwrap();
        j.append(&JournalEvent::SubSplit(5, 4)).unwrap();
        j.append(&JournalEvent::WorkerLease(0, 2)).unwrap(); // reassignment after death
        drop(j);
        let state = RunJournal::replay(&dir).unwrap();
        assert_eq!(state.sub_splits, vec![(5, 4)]);
        assert_eq!(state.leases, vec![(0, 5), (1, 2), (0, 2)]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn malformed_shard_records_are_hard_errors() {
        // CRC-valid but semantically bad records are damage a crash
        // cannot explain; replay must refuse them like any other event.
        for bad in
            ["sub-split 0", "sub-split 9 4", "sub-split 0 1", "worker-lease 0", "worker-lease 0 9"]
        {
            let dir = tmpdir(&format!("shard-bad-{}", bad.len()));
            let j = RunJournal::create(&dir, fp()).unwrap();
            j.append_line(bad).unwrap();
            drop(j);
            assert!(
                matches!(RunJournal::replay(&dir), Err(ParaHashError::Journal { .. })),
                "accepted {bad:?}"
            );
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn torn_tail_is_tolerated_at_every_cut() {
        let dir = tmpdir("torn");
        let j = RunJournal::create(&dir, fp()).unwrap();
        j.append(&JournalEvent::PartitionSealed(1)).unwrap();
        drop(j);
        let full = std::fs::read(RunJournal::path_in(&dir)).unwrap();
        let intact = RunJournal::replay(&dir).unwrap();
        assert_eq!(intact.valid_bytes, full.len() as u64);
        // Cut the file anywhere inside the *last* record: replay keeps
        // the config record and reports a torn tail.
        let first_record_len = full.len() - intact_second_record_len(&full);
        for cut in first_record_len + 1..full.len() {
            std::fs::write(RunJournal::path_in(&dir), &full[..cut]).unwrap();
            let state = RunJournal::replay(&dir).unwrap();
            assert!(state.torn_tail, "cut {cut}");
            assert_eq!(state.valid_bytes, first_record_len as u64, "cut {cut}");
            assert!(state.sealed.is_empty(), "cut {cut}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Length of the final record in a two-record journal buffer.
    fn intact_second_record_len(bytes: &[u8]) -> usize {
        let first_len = u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize + 8;
        bytes.len() - first_len
    }

    #[test]
    fn reopen_truncates_torn_tail_and_appends() {
        let dir = tmpdir("reopen");
        let j = RunJournal::create(&dir, fp()).unwrap();
        j.append(&JournalEvent::PartitionSealed(1)).unwrap();
        drop(j);
        // Simulate a crash mid-append of a third record.
        let mut bytes = std::fs::read(RunJournal::path_in(&dir)).unwrap();
        bytes.extend_from_slice(&[17, 0, 0, 0, 9]); // header fragment
        std::fs::write(RunJournal::path_in(&dir), &bytes).unwrap();

        let state = RunJournal::replay(&dir).unwrap();
        assert!(state.torn_tail);
        let j = RunJournal::reopen(&dir, &state).unwrap();
        j.append(&JournalEvent::SubgraphCommitted(1)).unwrap();
        drop(j);
        let state = RunJournal::replay(&dir).unwrap();
        assert!(!state.torn_tail, "truncation must remove the fragment");
        assert_eq!(state.sealed, BTreeSet::from([1]));
        assert_eq!(state.committed, BTreeSet::from([1]));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interior_corruption_stops_trust_at_the_flip() {
        let dir = tmpdir("interior");
        let j = RunJournal::create(&dir, fp()).unwrap();
        j.append(&JournalEvent::PartitionSealed(0)).unwrap();
        j.append(&JournalEvent::PartitionSealed(1)).unwrap();
        drop(j);
        let mut bytes = std::fs::read(RunJournal::path_in(&dir)).unwrap();
        let config_len = u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize + 8;
        // Flip a byte inside record 1 (the first sealed event).
        bytes[config_len + 10] ^= 0x40;
        std::fs::write(RunJournal::path_in(&dir), &bytes).unwrap();
        let state = RunJournal::replay(&dir).unwrap();
        assert!(state.torn_tail);
        assert_eq!(state.valid_bytes, config_len as u64);
        assert!(state.sealed.is_empty(), "events after the flip are untrusted");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn malformed_valid_crc_record_is_an_error() {
        let dir = tmpdir("malformed");
        // A journal whose first (CRC-valid) record is not a config line.
        let payload = b"partition-sealed 0";
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&msp::crc32(payload).to_le_bytes());
        bytes.extend_from_slice(payload);
        std::fs::write(RunJournal::path_in(&dir), &bytes).unwrap();
        let err = RunJournal::replay(&dir).unwrap_err();
        assert!(matches!(err, ParaHashError::Journal { .. }), "{err}");

        // Out-of-range partition index in a valid record.
        let j = RunJournal::create(&dir, fp()).unwrap();
        j.append(&JournalEvent::PartitionSealed(5)).unwrap();
        drop(j);
        let mut bytes = std::fs::read(RunJournal::path_in(&dir)).unwrap();
        let payload = b"partition-sealed 99";
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&msp::crc32(payload.as_slice()).to_le_bytes());
        bytes.extend_from_slice(payload);
        std::fs::write(RunJournal::path_in(&dir), &bytes).unwrap();
        let err = RunJournal::replay(&dir).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tuner_state_roundtrips_and_validates() {
        let dir = tmpdir("tuner");
        let j = RunJournal::create(&dir, fp()).unwrap();
        let t = TunerState::quantise(0.6667, Regime::ComputeBound);
        assert_eq!(t.gpu_share_milli, 667);
        j.append(&JournalEvent::TunerState(t)).unwrap();
        // A later record overrides an earlier one.
        let t2 = TunerState::quantise(0.25, Regime::IoBound);
        j.append(&JournalEvent::TunerState(t2)).unwrap();
        j.append(&JournalEvent::RunComplete).unwrap();
        drop(j);
        let state = RunJournal::replay(&dir).unwrap();
        assert_eq!(state.tuner, Some(t2));
        let warm = state.tuner.unwrap().warm_start();
        assert!((warm.gpu_share - 0.25).abs() < 1e-9);
        assert_eq!(warm.regime, Regime::IoBound);

        // An out-of-range share in a CRC-valid record is an error, not a
        // torn tail.
        let mut bytes = std::fs::read(RunJournal::path_in(&dir)).unwrap();
        let payload = b"tuner-state 2000 mixed";
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&msp::crc32(payload.as_slice()).to_le_bytes());
        bytes.extend_from_slice(payload);
        std::fs::write(RunJournal::path_in(&dir), &bytes).unwrap();
        let err = RunJournal::replay(&dir).unwrap_err();
        assert!(err.to_string().contains("exceeds 1000"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quantise_clamps_and_rounds() {
        assert_eq!(TunerState::quantise(-0.5, Regime::Mixed).gpu_share_milli, 0);
        assert_eq!(TunerState::quantise(1.5, Regime::Mixed).gpu_share_milli, 1000);
        assert_eq!(TunerState::quantise(0.5, Regime::Mixed).gpu_share_milli, 500);
    }

    #[test]
    fn digest_distinguishes_chunk_boundaries() {
        let a = Fingerprint::digest_bytes([b"ab".as_slice(), b"c".as_slice()]);
        let b = Fingerprint::digest_bytes([b"a".as_slice(), b"bc".as_slice()]);
        let c = Fingerprint::digest_bytes([b"abc".as_slice()]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
        assert_eq!(a, Fingerprint::digest_bytes([b"ab".as_slice(), b"c".as_slice()]));
    }

    #[test]
    fn open_or_create_preserves_matching_journals_only() {
        let dir = tmpdir("open-or-create");
        let j = RunJournal::create(&dir, fp()).unwrap();
        j.append(&JournalEvent::SubgraphCommitted(2)).unwrap();
        drop(j);
        // Same fingerprint: records survive the reopen (and more append).
        let j = RunJournal::open_or_create(&dir, fp()).unwrap();
        j.append(&JournalEvent::SubgraphCommitted(3)).unwrap();
        drop(j);
        let state = RunJournal::replay(&dir).unwrap();
        assert_eq!(state.committed, BTreeSet::from([2, 3]));
        // Different fingerprint: the stale journal is replaced.
        let other = Fingerprint { k: 11, ..fp() };
        drop(RunJournal::open_or_create(&dir, other).unwrap());
        let state = RunJournal::replay(&dir).unwrap();
        assert_eq!(state.fingerprint, other);
        assert!(state.committed.is_empty(), "stale records must not leak into a new run");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn worker_journals_aggregate_by_fingerprint() {
        let dir = tmpdir("aggregate");
        let j = RunJournal::create(&dir.join("worker-0"), fp()).unwrap();
        j.append(&JournalEvent::SubgraphCommitted(1)).unwrap();
        j.append(&JournalEvent::SubgraphCommitted(4)).unwrap();
        drop(j);
        let j = RunJournal::create(&dir.join("worker-1"), fp()).unwrap();
        j.append(&JournalEvent::SubgraphCommitted(2)).unwrap();
        drop(j);
        // A worker journal from a *different* run contributes nothing.
        let foreign = Fingerprint { input_digest: 99, ..fp() };
        let j = RunJournal::create(&dir.join("worker-2"), foreign).unwrap();
        j.append(&JournalEvent::SubgraphCommitted(5)).unwrap();
        drop(j);
        // Non-worker directories and junk are ignored.
        std::fs::create_dir_all(dir.join("worker-x")).unwrap();
        std::fs::create_dir_all(dir.join("subgraphs")).unwrap();
        assert_eq!(worker_committed(&dir, &fp()), BTreeSet::from([1, 2, 4]));
        assert_eq!(worker_committed(&dir.join("nonexistent"), &fp()), BTreeSet::new());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_journal_is_io_error() {
        let dir = tmpdir("missing");
        assert!(!RunJournal::exists(&dir));
        assert!(matches!(RunJournal::replay(&dir), Err(ParaHashError::Io(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
