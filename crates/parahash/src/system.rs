use std::collections::BTreeSet;
use std::fs::File;
use std::io::BufReader;
use std::path::Path;
use std::time::{Duration, Instant};

use dna::{FastqReader, SeqRead};
use hashgraph::DeBruijnGraph;
use msp::{PartitionManifest, SealedPayload};
use pipeline::{CancelToken, PipelineReport, SharedCounterQueue, ThrottledIo};

use crate::journal::{Fingerprint, JournalEvent, RunJournal, TunerState};
use crate::step1::{device_baselines, device_deltas, step1_report, step1_sink_fastq, step1_sink_reads};
use crate::step2::{decode_subgraph_checked, run_step2_streaming, run_step2_with};
use crate::{
    run_step1, run_step1_fastq, ParaHashConfig, ParaHashError, Result, RunReport, Step1Stats,
    StepReport,
};

/// The assembled system: run both steps against a read set and collect
/// the full report.
///
/// See the crate docs for the workflow; construction only validates that
/// the working directory can be created.
#[derive(Debug)]
pub struct ParaHash {
    config: ParaHashConfig,
}

/// What a full run produces.
#[derive(Debug)]
pub struct RunOutcome {
    /// The complete De Bruijn graph (union of all subgraphs).
    pub graph: DeBruijnGraph,
    /// Timing, workload-distribution and memory accounting.
    pub report: RunReport,
}

impl ParaHash {
    /// Creates a runner, ensuring the working directory exists.
    ///
    /// # Errors
    ///
    /// Returns [`crate::ParaHashError::Io`] if the directory cannot be
    /// created.
    pub fn new(config: ParaHashConfig) -> Result<ParaHash> {
        std::fs::create_dir_all(config.work_dir())?;
        Ok(ParaHash { config })
    }

    /// The configuration this runner was built with.
    pub fn config(&self) -> &ParaHashConfig {
        &self.config
    }

    /// Constructs the De Bruijn graph of `reads`, running both pipelined
    /// steps. Progress is journaled to `work_dir/run.journal`; when the
    /// config was built with [`resume(true)`](crate::ParaHashConfigBuilder::resume)
    /// and a journal from an interrupted run exists, the run picks up
    /// where that one died (see [`resume`](Self::resume)).
    ///
    /// # Errors
    ///
    /// Propagates any step failure (I/O, corruption, device memory).
    pub fn run(&self, reads: &[SeqRead]) -> Result<RunOutcome> {
        self.run_inner(reads, self.config.resume)
    }

    /// Resumes an interrupted [`run`](Self::run) (or
    /// [`run_fused`](Self::run_fused)) from its `run.journal`,
    /// regardless of the config's `resume` flag:
    ///
    /// * the journal is replayed (a torn final record — the signature of
    ///   a crash mid-append — is dropped);
    /// * if its config fingerprint (k, p, partitions, input digest)
    ///   differs from this run's, the resume is refused with
    ///   [`ParaHashError::FingerprintMismatch`];
    /// * Step 1 is skipped iff every partition was sealed and the
    ///   manifest survives; otherwise it re-runs from scratch;
    /// * partitions whose subgraphs were committed (journaled *and*
    ///   still decoding cleanly on disk) are skipped — their persisted
    ///   subgraphs are absorbed directly; everything else re-runs.
    ///
    /// When no journal exists this is simply a fresh run.
    ///
    /// # Errors
    ///
    /// [`ParaHashError::FingerprintMismatch`] as above,
    /// [`ParaHashError::Journal`] for a journal whose valid-CRC records
    /// are malformed, plus every [`run`](Self::run) failure mode.
    pub fn resume(&self, reads: &[SeqRead]) -> Result<RunOutcome> {
        self.run_inner(reads, true)
    }

    fn run_inner(&self, reads: &[SeqRead], resume: bool) -> Result<RunOutcome> {
        let io = ThrottledIo::with_retry(self.config.io_mode, self.config.retry);
        let started = Instant::now();
        // Optional data-driven sizing: recover Property-1's λ from the
        // input's quality strings before allocating any tables.
        let mut config = self.config.clone();
        if let Some(sample) = config.auto_lambda {
            if let Some(lambda) = dna::quality::estimate_lambda(reads, sample) {
                // Keep a small floor so pristine data still gets headroom.
                config.sizing.lambda = lambda.max(0.05);
            }
        }
        let fingerprint = fingerprint_of(&config, Fingerprint::digest_reads(reads));
        config.run_token = fingerprint.token();
        config.input_digest = fingerprint.input_digest;
        let plan = ResumePlan::prepare(&config, fingerprint, resume)?;
        two_phase(&config, &io, started, plan, |cfg, io| run_step1(cfg, reads, io))
    }

    /// Streams a FASTQ file through construction **without loading the
    /// read set into memory**: Step 1's input stage parses one batch at a
    /// time (the paper's partition-by-partition workflow for inputs that
    /// exceed host memory). λ auto-sizing is not applied in this mode —
    /// the reads are never all in hand; pass an explicit
    /// [`crate::ParaHashConfigBuilder::sizing`] instead.
    ///
    /// # Errors
    ///
    /// Propagates parse failures and any step failure.
    pub fn run_fastq_streaming(&self, path: impl AsRef<Path>) -> Result<RunOutcome> {
        let path = path.as_ref();
        let io = ThrottledIo::with_retry(self.config.io_mode, self.config.retry);
        let started = Instant::now();
        // The streamed input is never all in hand, so its digest is the
        // cheap path+length one (see `Fingerprint::digest_path`).
        let mut config = self.config.clone();
        let fingerprint = fingerprint_of(&config, Fingerprint::digest_path(path)?);
        config.run_token = fingerprint.token();
        config.input_digest = fingerprint.input_digest;
        let plan = ResumePlan::prepare(&config, fingerprint, config.resume)?;
        two_phase(&config, &io, started, plan, |cfg, io| run_step1_fastq(cfg, path, io))
    }

    /// Parses a FASTQ file and runs construction on its reads.
    ///
    /// # Errors
    ///
    /// Propagates parse failures and any step failure.
    pub fn run_fastq(&self, path: impl AsRef<Path>) -> Result<RunOutcome> {
        let reader = FastqReader::new(BufReader::new(File::open(path)?));
        let reads = reader.collect::<std::result::Result<Vec<_>, _>>().map_err(|e| match e {
            dna::DnaError::Io(io) => crate::ParaHashError::Io(io),
            other => crate::ParaHashError::InvalidConfig(format!("bad fastq input: {other}")),
        })?;
        self.run(&reads)
    }

    /// **Fused** construction: Step 1 stages partitions in a
    /// budget-governed in-memory [`msp::PartitionStore`] (spilling the
    /// largest to disk only when
    /// [`partition_memory_budget`](crate::ParaHashConfigBuilder::partition_memory_budget)
    /// is exceeded) and Step 2 runs *concurrently on its own thread*,
    /// consuming sealed partitions from a streaming queue the moment
    /// Step 1 hands them over — no full-dataset disk round-trip and no
    /// inter-step barrier. The result is byte-identical to
    /// [`run`](Self::run): only where the partition bytes live changes,
    /// never what they contain.
    ///
    /// The manifest (with `resident`/`spilled` residency marks) is still
    /// written to `work_dir/superkmers/manifest.txt`, so a fused run's
    /// partition directory is inspectable and any quarantined partitions
    /// are recorded exactly as in the two-phase flow.
    ///
    /// # Errors
    ///
    /// Propagates any step failure; a Step-1 failure takes precedence
    /// and cleans up the partial partition directory.
    pub fn run_fused(&self, reads: &[SeqRead]) -> Result<RunOutcome> {
        let io = ThrottledIo::with_retry(self.config.io_mode, self.config.retry);
        self.run_fused_with_io(reads, &io)
    }

    /// [`run_fused`](Self::run_fused) against a caller-owned I/O channel —
    /// the fused analogue of handing [`run_step1`]/[`run_step2`] your own
    /// [`ThrottledIo`], so fault-injection hooks and retry counters remain
    /// observable across the fused run.
    ///
    /// # Errors
    ///
    /// Same as [`run_fused`](Self::run_fused).
    pub fn run_fused_with_io(&self, reads: &[SeqRead], io: &ThrottledIo) -> Result<RunOutcome> {
        self.run_fused_inner(reads, io, self.config.resume)
    }

    /// Resumes an interrupted run through the **fused** flow — the fused
    /// analogue of [`resume`](Self::resume). Step 1 always re-runs
    /// (resident partition payloads died with the crashed process), but
    /// partitions whose subgraphs were journaled as committed and still
    /// verify on disk are skipped by Step 2 and absorbed directly.
    ///
    /// # Errors
    ///
    /// Same as [`resume`](Self::resume).
    pub fn resume_fused(&self, reads: &[SeqRead]) -> Result<RunOutcome> {
        let io = ThrottledIo::with_retry(self.config.io_mode, self.config.retry);
        self.run_fused_inner(reads, &io, true)
    }

    fn run_fused_inner(
        &self,
        reads: &[SeqRead],
        io: &ThrottledIo,
        resume: bool,
    ) -> Result<RunOutcome> {
        let mut config = self.config.clone();
        if let Some(sample) = config.auto_lambda {
            if let Some(lambda) = dna::quality::estimate_lambda(reads, sample) {
                config.sizing.lambda = lambda.max(0.05);
            }
        }
        let fingerprint = fingerprint_of(&config, Fingerprint::digest_reads(reads));
        config.run_token = fingerprint.token();
        config.input_digest = fingerprint.input_digest;
        let plan = ResumePlan::prepare(&config, fingerprint, resume)?;
        fused_run(&config, io, plan, |cfg, io, cancel, store| {
            step1_sink_reads(cfg, reads, io, cancel, store)
        })
    }

    /// Fused construction streamed from a FASTQ file: combines
    /// [`run_fused`](Self::run_fused)'s in-memory partition handoff with
    /// [`run_fastq_streaming`](Self::run_fastq_streaming)'s one-batch-at-a-
    /// time input parsing, so neither the read set nor (within budget) the
    /// partitions ever hit the disk. λ auto-sizing is not applied (the
    /// reads are never all in hand); pass an explicit
    /// [`sizing`](crate::ParaHashConfigBuilder::sizing) instead.
    ///
    /// # Errors
    ///
    /// Propagates parse failures and any step failure.
    pub fn run_fused_fastq(&self, path: impl AsRef<Path>) -> Result<RunOutcome> {
        let path = path.as_ref();
        let io = ThrottledIo::with_retry(self.config.io_mode, self.config.retry);
        let mut config = self.config.clone();
        let fingerprint = fingerprint_of(&config, Fingerprint::digest_path(path)?);
        config.run_token = fingerprint.token();
        config.input_digest = fingerprint.input_digest;
        let plan = ResumePlan::prepare(&config, fingerprint, config.resume)?;
        fused_run(&config, &io, plan, |cfg, io, cancel, store| {
            step1_sink_fastq(cfg, path, io, cancel, store)
        })
    }
}

/// This run's identity: the parameters whose artifacts a journal
/// describes, plus the input digest supplied by the entry point.
fn fingerprint_of(config: &ParaHashConfig, input_digest: u64) -> Fingerprint {
    Fingerprint { k: config.k, p: config.p, partitions: config.partitions, input_digest }
}

/// The resume decision made before any step runs: the (created or
/// reopened) journal, whether Step 1's artifacts survived whole, and
/// which committed subgraphs verified on disk.
struct ResumePlan {
    journal: RunJournal,
    /// Every partition was journaled as sealed *and* the manifest loads:
    /// Step 1's output is complete on disk, skip the step.
    skip_step1: bool,
    /// Subgraphs journaled as committed whose files still decode
    /// cleanly: Step 2 skips these partitions and the driver absorbs the
    /// persisted subgraphs instead. A committed record whose file is
    /// missing or damaged is silently dropped from this set — the
    /// partition simply re-runs.
    committed: BTreeSet<usize>,
    /// The interrupted run's final autotuner state (`tuner-state`
    /// record), if it got far enough to write one. Seeds the resumed
    /// run's split tuner — and, when the dead run was I/O-bound, its
    /// partition memory budget — instead of re-probing from scratch.
    tuner: Option<TunerState>,
}

impl ResumePlan {
    fn prepare(config: &ParaHashConfig, fingerprint: Fingerprint, resume: bool) -> Result<ResumePlan> {
        let fresh = |journal| ResumePlan {
            journal,
            skip_step1: false,
            committed: BTreeSet::new(),
            tuner: None,
        };
        // A vacant journal (zero complete records) is the signature of a
        // crash at creation: nothing was journaled, nothing was done —
        // treat it exactly like a missing journal.
        if !resume
            || !RunJournal::exists(&config.work_dir)
            || RunJournal::is_vacant(&config.work_dir)?
        {
            return Ok(fresh(RunJournal::create(&config.work_dir, fingerprint)?));
        }
        let state = RunJournal::replay(&config.work_dir)?;
        if state.fingerprint != fingerprint {
            return Err(ParaHashError::FingerprintMismatch {
                journal: state.fingerprint,
                current: fingerprint,
            });
        }
        if state.complete {
            // The previous run finished; there is nothing to resume.
            // Start over with a fresh journal.
            return Ok(fresh(RunJournal::create(&config.work_dir, fingerprint)?));
        }
        let journal = RunJournal::reopen(&config.work_dir, &state)?;
        // Staged-but-uncommitted artifacts from the crashed run are dead
        // weight (every live artifact lost its `.tmp` suffix at commit):
        // sweep them so they cannot be mistaken for real files. The sweep
        // is scoped by the fingerprint token so a concurrent run's live
        // partition staging in a shared output directory survives.
        let token = fingerprint.token();
        pipeline::commit::sweep_tmp_scoped(&config.work_dir.join("superkmers"), &token);
        pipeline::commit::sweep_tmp_scoped(&config.work_dir.join("subgraphs"), &token);
        let skip_step1 = (0..config.partitions).all(|i| state.sealed.contains(&i))
            && PartitionManifest::load(config.work_dir.join("superkmers")).is_ok();
        // Cluster-wide resume: a sharded parent that crashed
        // mid-distribution may have workers whose own journals recorded
        // commits the parent never saw (the worker journaled and
        // committed, the parent died before its `subgraph-committed`
        // record). Aggregate every same-fingerprint `worker-<id>`
        // journal under the work directory into the committed set —
        // each candidate still has to pass the on-disk verification
        // below, so a stale or lying record costs nothing but a check.
        let mut claimed = state.committed.clone();
        claimed.extend(crate::journal::worker_committed(&config.work_dir, &fingerprint));
        // Only trust commit records whose files verify end-to-end right
        // now: the journal says the rename happened, the CRC trailer
        // says the bytes are still whole.
        let committed = if config.write_subgraphs {
            let sub_dir = config.work_dir.join("subgraphs");
            claimed
                .iter()
                .copied()
                .filter(|&i| {
                    let path = sub_dir.join(format!("sub-{i:05}.dbg"));
                    std::fs::read(&path)
                        .ok()
                        .is_some_and(|bytes| decode_subgraph_checked(&bytes, Some(i)).is_ok())
                })
                .collect()
        } else {
            BTreeSet::new()
        };
        Ok(ResumePlan { journal, skip_step1, committed, tuner: state.tuner })
    }

    /// Absorbs the skipped partitions' persisted subgraphs into the
    /// final graph — the redo-free half of a resumed Step 2.
    fn absorb_committed(&self, config: &ParaHashConfig, graph: &mut DeBruijnGraph) -> Result<()> {
        let sub_dir = config.work_dir.join("subgraphs");
        for &i in &self.committed {
            let bytes = std::fs::read(sub_dir.join(format!("sub-{i:05}.dbg")))?;
            graph.absorb(decode_subgraph_checked(&bytes, Some(i))?);
        }
        Ok(())
    }
}

/// Step-1 report for a resumed run that skipped Step 1 entirely: every
/// counter is zero — the work was done (and reported) by the interrupted
/// run, not this one.
fn skipped_step1_report() -> StepReport {
    StepReport {
        step: 1,
        pipeline: PipelineReport {
            elapsed: Duration::ZERO,
            input_time: Duration::ZERO,
            output_time: Duration::ZERO,
            shares: Vec::new(),
            partitions: 0,
            spans: Vec::new(),
            cancelled: false,
        },
        cpu_compute: Duration::ZERO,
        gpu_compute: Duration::ZERO,
        contention: None,
        step1_stats: Some(Step1Stats::default()),
        resizes: 0,
        peak_partition_bytes: 0,
        peak_table_bytes: 0,
        peak_resident_store_bytes: 0,
        quarantined: Vec::new(),
        sub_splits: Vec::new(),
        coproc: None,
        exhausted_leases: Vec::new(),
    }
}

/// The two-phase driver shared by [`ParaHash::run`] and
/// [`ParaHash::run_fastq_streaming`]: Step 1 (unless the resume plan
/// says its artifacts survived), `partition-sealed` journaling, Step 2
/// with committed-subgraph skipping, absorption of surviving subgraphs,
/// and the final `run-complete` record.
fn two_phase(
    config: &ParaHashConfig,
    io: &ThrottledIo,
    started: Instant,
    plan: ResumePlan,
    step1: impl FnOnce(&ParaHashConfig, &ThrottledIo) -> Result<(PartitionManifest, StepReport)>,
) -> Result<RunOutcome> {
    let (manifest, step1) = if plan.skip_step1 {
        (PartitionManifest::load(config.work_dir.join("superkmers"))?, skipped_step1_report())
    } else {
        let out = step1(config, io)?;
        // Two-phase Step 1 is all-or-nothing (partition files only leave
        // their `.tmp` names at `finish()`), so every partition seals at
        // once, right here.
        for i in 0..config.partitions {
            plan.journal.append(&JournalEvent::PartitionSealed(i))?;
        }
        out
    };
    // `workers(N)` swaps the in-process Step 2 for the multi-process
    // shard; the two produce byte-identical subgraphs and graphs (see
    // `crate::shard`), so everything downstream is oblivious.
    let (mut graph, step2) = if config.workers > 0 || config.listen.is_some() {
        crate::shard::run_step2_sharded(config, &manifest, io, Some(&plan.journal), &plan.committed)?
    } else {
        run_step2_with(config, &manifest, io, Some(&plan.journal), &plan.committed)?
    };
    plan.absorb_committed(config, &mut graph)?;
    plan.journal.append(&JournalEvent::RunComplete)?;
    let total_elapsed = started.elapsed();
    let report = RunReport {
        // During a Step-2 launch the loaded partition buffer and its
        // hash table coexist, so they add; Step 1 holds one batch.
        peak_host_bytes: graph.approx_bytes() as u64
            + step1
                .peak_partition_bytes
                .max(step2.peak_partition_bytes + step2.peak_table_bytes),
        partition_bytes: manifest.total_bytes(),
        distinct_vertices: graph.distinct_vertices(),
        total_kmers: graph.total_kmer_occurrences(),
        step1,
        step2,
        total_elapsed,
    };
    Ok(RunOutcome { graph, report })
}

/// The fused driver shared by [`ParaHash::run_fused`] and
/// [`ParaHash::run_fused_fastq`]: Step 1 feeds a [`msp::PartitionStore`]
/// on the calling thread while Step 2 consumes sealed partitions from a
/// [`SharedCounterQueue`] on a second thread. A shared [`CancelToken`]
/// links the two — a fatal error on either side drains the other.
fn fused_run(
    config: &ParaHashConfig,
    io: &ThrottledIo,
    plan: ResumePlan,
    step1: impl FnOnce(
        &ParaHashConfig,
        &ThrottledIo,
        &CancelToken,
        &mut msp::PartitionStore,
    ) -> Result<(Step1Stats, PipelineReport, u64)>,
) -> Result<RunOutcome> {
    let started = Instant::now();
    let cancel = CancelToken::new();
    // Capacity = partition count: Step 1 seals each partition exactly
    // once, so the queue never wraps and `push` never blocks.
    let feed: SharedCounterQueue<msp::SealedPartition> =
        SharedCounterQueue::new(config.partitions);
    let dir = config.work_dir.join("superkmers");
    // Fused resume always re-runs Step 1: resident payloads died with
    // the crashed process, so `skip_step1` cannot be honoured here. The
    // committed-subgraph skips still apply — re-partitioning the same
    // input yields the same per-partition k-mer content, and the
    // canonical subgraph encoding makes the surviving files exact.
    let journal = &plan.journal;
    // Model-driven resume steering: a journaled `tuner-state` record
    // seeds the split tuner (below) and, when the dead run was
    // I/O-bound (Case 2: disk the bottleneck), doubles a finite
    // partition budget so fewer partitions spill this time. Residency
    // never changes partition *content*, only where the bytes wait, so
    // the result stays byte-identical.
    let warm = plan.tuner.map(|t| t.warm_start());
    let budget = match plan.tuner {
        Some(t)
            if t.regime == pipeline::perfmodel::Regime::IoBound
                && config.partition_memory_budget > 0
                && config.partition_memory_budget < u64::MAX =>
        {
            config.partition_memory_budget.saturating_mul(2)
        }
        _ => config.partition_memory_budget,
    };

    type Step1Done =
        (Step1Stats, PipelineReport, u64, u64, msp::PartitionManifest, Vec<hetsim::DeviceMetrics>);
    let (step1_out, step2_out) = std::thread::scope(|s| {
        let step2_handle = s.spawn(|| {
            run_step2_streaming(config, &feed, io, &cancel, Some(journal), &plan.committed, warm)
        });
        let step1_out = (|| -> Result<Option<Step1Done>> {
            let mut store = msp::PartitionStore::create_scoped(
                &dir,
                config.partitions,
                config.k,
                config.p,
                budget,
                &config.run_token,
            )?;
            // One device roster serves both steps. Step 2's device work
            // only begins once sealed partitions appear on the feed
            // (below), so the window between these two snapshots is
            // exclusively Step 1's.
            let baselines = device_baselines(config);
            let (stats, preport, peak_batch) = step1(config, io, &cancel, &mut store)?;
            let deltas = device_deltas(config, &baselines);
            if cancel.is_cancelled() {
                // Step 2 failed underneath us; its error wins below.
                return Ok(None);
            }
            let peak_resident = store.peak_resident_bytes();
            let manifest = store.finish_manifest()?;
            // Hand every partition over — resident ones by value, spilled
            // ones as their file path — then mark end-of-stream so the
            // Step-2 input stage terminates once the queue drains.
            //
            // Dispatch order is steered, not index order: spilled
            // partitions first (their loads overlap compute on the
            // resident ones, hiding T_IO per §IV Case 2), largest first
            // within each residency class (longest-processing-time
            // ordering tightens the Eq. 1 makespan), index as the
            // deterministic tiebreak. Order affects only scheduling —
            // each partition's subgraph is canonical regardless.
            let mut order: Vec<usize> = (0..config.partitions).collect();
            {
                let stats = store.stats();
                order.sort_by_key(|&i| {
                    (store.is_resident(i), std::cmp::Reverse(stats[i].bytes), i)
                });
            }
            for i in order {
                let sealed = store.seal(i)?;
                // Only a *spilled* partition is durable: journaling a
                // resident one as sealed would claim bytes that exist
                // nowhere but in this process's memory.
                let durable = matches!(sealed.payload, SealedPayload::Spilled(_));
                feed.push(sealed);
                if durable {
                    journal.append(&JournalEvent::PartitionSealed(i))?;
                }
            }
            feed.finish();
            Ok(Some((stats, preport, peak_batch, peak_resident, manifest, deltas)))
        })();
        if !matches!(step1_out, Ok(Some(_))) {
            // Step-1 failure (or observed cancellation): wake the Step-2
            // side so its input stage stops waiting and the thread exits.
            cancel.cancel();
            feed.close();
        }
        let step2_out = match step2_handle.join() {
            Ok(result) => result,
            Err(panic) => std::panic::resume_unwind(panic),
        };
        (step1_out, step2_out)
    });

    let (stats, preport, peak_batch, peak_resident, mut manifest, step1_deltas) = match step1_out {
        Ok(Some(done)) => done,
        Ok(None) => {
            // Step 1 was cancelled by a Step-2 fatal error: the partition
            // directory covers an unknown prefix of the input.
            let _ = std::fs::remove_dir_all(&dir);
            return Err(step2_out.err().unwrap_or_else(|| {
                ParaHashError::InvalidConfig(
                    "fused run cancelled without a recorded error".into(),
                )
            }));
        }
        Err(e) => {
            let _ = std::fs::remove_dir_all(&dir);
            return Err(e);
        }
    };
    let (mut graph, step2) = step2_out?;
    // The streaming Step 2 does not own the manifest, so the fused driver
    // persists its quarantine marks (the two-phase flow does this inside
    // `run_step2`).
    if !step2.quarantined.is_empty() {
        for q in &step2.quarantined {
            manifest.quarantine(q.index, q.reason.clone());
        }
        manifest.save()?;
    }
    plan.absorb_committed(config, &mut graph)?;
    // Persist the tuner's converged state just before `run-complete`: a
    // finished run's record is the warm start for the *next* fused run
    // over the same artifacts, and a crash after this point still leaves
    // the record for `resume_fused` to seed from.
    if let Some(coproc) = &step2.coproc {
        plan.journal
            .append(&JournalEvent::TunerState(TunerState::quantise(coproc.gpu_share, coproc.regime)))?;
    }
    plan.journal.append(&JournalEvent::RunComplete)?;
    let mut step1 = step1_report(config, stats, preport, peak_batch, &step1_deltas);
    step1.peak_resident_store_bytes = peak_resident;
    let total_elapsed = started.elapsed();
    let report = RunReport {
        // Fused accounting: resident partitions coexist with both the
        // in-flight Step-1 batch and Step-2's buffer+table, so the
        // store's peak *adds* to the larger of the two steps' transients.
        peak_host_bytes: graph.approx_bytes() as u64
            + peak_resident
            + step1
                .peak_partition_bytes
                .max(step2.peak_partition_bytes + step2.peak_table_bytes),
        partition_bytes: manifest.total_bytes(),
        distinct_vertices: graph.distinct_vertices(),
        total_kmers: graph.total_kmer_occurrences(),
        step1,
        step2,
        total_elapsed,
    };
    Ok(RunOutcome { graph, report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipeline::IoMode;

    fn reads() -> Vec<SeqRead> {
        vec![
            SeqRead::from_ascii("a", b"ACGTTGCATGGACCAGTTACGGATCAGGCATT"),
            SeqRead::from_ascii("b", b"TGATGGATGATGGATGGTAGCATACGTTGCAT"),
            SeqRead::from_ascii("c", b"GGCATTAGCCAGTACGGATCACCGTATGCAAT"),
            SeqRead::from_ascii("d", b"ACGTTGCATGGACCAGTTACGGATCAGGCATT"),
        ]
    }

    fn runner(dir: &str, io: IoMode) -> ParaHash {
        let cfg = ParaHashConfig::builder()
            .k(9)
            .p(5)
            .partitions(5)
            .cpu_threads(2)
            .io_mode(io)
            .work_dir(std::env::temp_dir().join(dir))
            .build()
            .unwrap();
        let _ = std::fs::remove_dir_all(cfg.work_dir());
        ParaHash::new(cfg).unwrap()
    }

    #[test]
    fn end_to_end_counts_are_consistent() {
        let ph = runner("parahash-sys-e2e", IoMode::Unthrottled);
        let rs = reads();
        let outcome = ph.run(&rs).unwrap();
        let expected_kmers: u64 = rs.iter().map(|r| (r.len() - 9 + 1) as u64).sum();
        assert_eq!(outcome.graph.total_kmer_occurrences(), expected_kmers);
        assert_eq!(outcome.report.total_kmers, expected_kmers);
        assert_eq!(outcome.report.distinct_vertices, outcome.graph.distinct_vertices());
        assert!(outcome.report.duplicate_vertices() > 0, "read d duplicates read a");
        assert!(outcome.report.partition_bytes > 0);
        assert!(outcome.report.total_elapsed >= outcome.report.steps_elapsed());
        assert!(outcome.report.summary().contains("distinct"));
        std::fs::remove_dir_all(ph.config().work_dir()).unwrap();
    }

    #[test]
    fn throttled_run_produces_identical_graph() {
        let fast = runner("parahash-sys-fast", IoMode::Unthrottled);
        let slow = runner("parahash-sys-slow", IoMode::Throttled { bytes_per_sec: 200_000 });
        let rs = reads();
        let a = fast.run(&rs).unwrap();
        let b = slow.run(&rs).unwrap();
        assert_eq!(a.graph, b.graph, "I/O regime must not change the result");
        std::fs::remove_dir_all(fast.config().work_dir()).unwrap();
        std::fs::remove_dir_all(slow.config().work_dir()).unwrap();
    }

    #[test]
    fn run_fastq_roundtrip() {
        let ph = runner("parahash-sys-fastq", IoMode::Unthrottled);
        let path = std::env::temp_dir().join("parahash-sys-input.fastq");
        {
            let mut w = dna::FastqWriter::new(std::fs::File::create(&path).unwrap());
            for r in reads() {
                w.write_record(&r).unwrap();
            }
            w.into_inner().unwrap().sync_all().unwrap();
        }
        let via_file = ph.run_fastq(&path).unwrap();
        let via_mem = ph.run(&reads()).unwrap();
        assert_eq!(via_file.graph, via_mem.graph);
        std::fs::remove_file(path).unwrap();
        std::fs::remove_dir_all(ph.config().work_dir()).unwrap();
    }

    #[test]
    fn streaming_fastq_matches_in_memory() {
        let ph = runner("parahash-sys-stream", IoMode::Unthrottled);
        let path = std::env::temp_dir().join(format!("parahash-stream-{}.fastq", std::process::id()));
        {
            let mut w = dna::FastqWriter::new(std::fs::File::create(&path).unwrap());
            for r in reads() {
                w.write_record(&r).unwrap();
            }
            w.into_inner().unwrap().sync_all().unwrap();
        }
        let streamed = ph.run_fastq_streaming(&path).unwrap();
        let in_memory = ph.run(&reads()).unwrap();
        assert_eq!(streamed.graph, in_memory.graph);
        assert_eq!(
            streamed.report.step1.pipeline.total_work(),
            reads().len() as u64,
            "every read must flow through the streaming input stage"
        );
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_dir_all(ph.config().work_dir()).unwrap();
    }

    #[test]
    fn streaming_small_batches_use_many_input_partitions() {
        // Tiny batch size forces several pipeline input partitions.
        let cfg = ParaHashConfig::builder()
            .k(9)
            .p(5)
            .partitions(4)
            .read_batch_bytes(24)
            .work_dir(std::env::temp_dir().join("parahash-sys-smallbatch"))
            .build()
            .unwrap();
        let _ = std::fs::remove_dir_all(cfg.work_dir());
        let ph = ParaHash::new(cfg).unwrap();
        let path = std::env::temp_dir().join(format!("parahash-smallbatch-{}.fastq", std::process::id()));
        {
            let mut w = dna::FastqWriter::new(std::fs::File::create(&path).unwrap());
            for r in reads() {
                w.write_record(&r).unwrap();
            }
            w.into_inner().unwrap().sync_all().unwrap();
        }
        let outcome = ph.run_fastq_streaming(&path).unwrap();
        assert!(outcome.report.step1.pipeline.partitions >= 3, "expected several input batches");
        assert_eq!(outcome.graph, ph.run(&reads()).unwrap().graph);
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_dir_all(ph.config().work_dir()).unwrap();
    }

    #[test]
    fn fused_all_resident_matches_two_phase() {
        let cfg = ParaHashConfig::builder()
            .k(9)
            .p(5)
            .partitions(5)
            .cpu_threads(2)
            .partition_memory_budget(u64::MAX)
            .work_dir(std::env::temp_dir().join("parahash-sys-fused-resident"))
            .build()
            .unwrap();
        let _ = std::fs::remove_dir_all(cfg.work_dir());
        let ph = ParaHash::new(cfg).unwrap();
        let rs = reads();
        let fused = ph.run_fused(&rs).unwrap();
        let two_phase = ph.run(&rs).unwrap();
        assert_eq!(fused.graph, two_phase.graph, "fusion must not change the result");
        assert!(
            fused.report.step1.peak_resident_store_bytes > 0,
            "a huge budget must keep partitions resident"
        );
        assert_eq!(fused.report.step2.pipeline.partitions, 5);
        assert_eq!(fused.report.total_kmers, two_phase.report.total_kmers);
        std::fs::remove_dir_all(ph.config().work_dir()).unwrap();
    }

    #[test]
    fn fused_zero_budget_spills_and_still_matches() {
        let cfg = ParaHashConfig::builder()
            .k(9)
            .p(5)
            .partitions(5)
            .cpu_threads(2)
            .partition_memory_budget(0)
            .work_dir(std::env::temp_dir().join("parahash-sys-fused-spill"))
            .build()
            .unwrap();
        let _ = std::fs::remove_dir_all(cfg.work_dir());
        let ph = ParaHash::new(cfg).unwrap();
        let rs = reads();
        let fused = ph.run_fused(&rs).unwrap();
        assert_eq!(
            fused.report.step1.peak_resident_store_bytes, 0,
            "budget 0 means nothing is ever resident"
        );
        // Every non-empty partition left a spill file behind.
        let dir = ph.config().work_dir().join("superkmers");
        let spilled = (0..5)
            .filter(|&i| dir.join(format!("part-{i:05}.skm")).exists())
            .count();
        assert!(spilled > 0, "zero budget must produce spill files");
        let two_phase = ph.run(&rs).unwrap();
        assert_eq!(fused.graph, two_phase.graph);
        std::fs::remove_dir_all(ph.config().work_dir()).unwrap();
    }

    #[test]
    fn streaming_malformed_fastq_is_rejected() {
        let ph = runner("parahash-sys-streambad", IoMode::Unthrottled);
        let path = std::env::temp_dir().join(format!("parahash-streambad-{}.fastq", std::process::id()));
        std::fs::write(&path, "@ok\nACGTACGTACGT\n+\nIIIIIIIIIIII\nnot-a-header\n").unwrap();
        assert!(ph.run_fastq_streaming(&path).is_err());
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_dir_all(ph.config().work_dir()).unwrap();
    }

    #[test]
    fn missing_fastq_is_io_error() {
        let ph = runner("parahash-sys-missing", IoMode::Unthrottled);
        assert!(matches!(
            ph.run_fastq("/no/such/file.fastq"),
            Err(crate::ParaHashError::Io(_))
        ));
        std::fs::remove_dir_all(ph.config().work_dir()).unwrap();
    }

    #[test]
    fn auto_sizing_estimates_lambda_from_quality() {
        // High-quality reads (tiny λ) with auto-sizing still build the
        // correct graph; low-quality reads do too (bigger tables).
        let mk = |q: u8| -> Vec<SeqRead> {
            reads()
                .into_iter()
                .map(|r| {
                    let l = r.len();
                    let id = r.id().to_owned();
                    SeqRead::new(id, r.into_seq())
                        .with_quality(vec![dna::quality::phred_char(q); l])
                })
                .collect()
        };
        for q in [2u8, 40u8] {
            let cfg = ParaHashConfig::builder()
                .k(9)
                .p(5)
                .partitions(4)
                .auto_sizing(16)
                .work_dir(std::env::temp_dir().join(format!("parahash-sys-auto-{q}")))
                .build()
                .unwrap();
            let _ = std::fs::remove_dir_all(cfg.work_dir());
            let ph = ParaHash::new(cfg).unwrap();
            let outcome = ph.run(&mk(q)).unwrap();
            assert_eq!(outcome.report.total_kmers, 4 * (32 - 9 + 1));
            std::fs::remove_dir_all(ph.config().work_dir()).unwrap();
        }
    }

    #[test]
    fn empty_input_builds_empty_graph() {
        let ph = runner("parahash-sys-empty", IoMode::Unthrottled);
        let outcome = ph.run(&[]).unwrap();
        assert_eq!(outcome.graph.distinct_vertices(), 0);
        assert_eq!(outcome.report.total_kmers, 0);
        std::fs::remove_dir_all(ph.config().work_dir()).unwrap();
    }
}
