use std::fs::File;
use std::io::BufReader;
use std::path::Path;
use std::time::Instant;

use dna::{FastqReader, SeqRead};
use hashgraph::DeBruijnGraph;
use pipeline::ThrottledIo;

use crate::{run_step1, run_step2, ParaHashConfig, Result, RunReport};

/// The assembled system: run both steps against a read set and collect
/// the full report.
///
/// See the crate docs for the workflow; construction only validates that
/// the working directory can be created.
#[derive(Debug)]
pub struct ParaHash {
    config: ParaHashConfig,
}

/// What a full run produces.
#[derive(Debug)]
pub struct RunOutcome {
    /// The complete De Bruijn graph (union of all subgraphs).
    pub graph: DeBruijnGraph,
    /// Timing, workload-distribution and memory accounting.
    pub report: RunReport,
}

impl ParaHash {
    /// Creates a runner, ensuring the working directory exists.
    ///
    /// # Errors
    ///
    /// Returns [`crate::ParaHashError::Io`] if the directory cannot be
    /// created.
    pub fn new(config: ParaHashConfig) -> Result<ParaHash> {
        std::fs::create_dir_all(config.work_dir())?;
        Ok(ParaHash { config })
    }

    /// The configuration this runner was built with.
    pub fn config(&self) -> &ParaHashConfig {
        &self.config
    }

    /// Constructs the De Bruijn graph of `reads`, running both pipelined
    /// steps.
    ///
    /// # Errors
    ///
    /// Propagates any step failure (I/O, corruption, device memory).
    pub fn run(&self, reads: &[SeqRead]) -> Result<RunOutcome> {
        let io = ThrottledIo::with_retry(self.config.io_mode, self.config.retry);
        let started = Instant::now();
        // Optional data-driven sizing: recover Property-1's λ from the
        // input's quality strings before allocating any tables.
        let mut config = self.config.clone();
        if let Some(sample) = config.auto_lambda {
            if let Some(lambda) = dna::quality::estimate_lambda(reads, sample) {
                // Keep a small floor so pristine data still gets headroom.
                config.sizing.lambda = lambda.max(0.05);
            }
        }
        let (manifest, step1) = run_step1(&config, reads, &io)?;
        let (graph, step2) = run_step2(&config, &manifest, &io)?;
        let total_elapsed = started.elapsed();
        let report = RunReport {
            // During a Step-2 launch the loaded partition buffer and its
            // hash table coexist, so they add; Step 1 holds one batch.
            peak_host_bytes: graph.approx_bytes() as u64
                + step1
                    .peak_partition_bytes
                    .max(step2.peak_partition_bytes + step2.peak_table_bytes),
            partition_bytes: manifest.total_bytes(),
            distinct_vertices: graph.distinct_vertices(),
            total_kmers: graph.total_kmer_occurrences(),
            step1,
            step2,
            total_elapsed,
        };
        Ok(RunOutcome { graph, report })
    }

    /// Streams a FASTQ file through construction **without loading the
    /// read set into memory**: Step 1's input stage parses one batch at a
    /// time (the paper's partition-by-partition workflow for inputs that
    /// exceed host memory). λ auto-sizing is not applied in this mode —
    /// the reads are never all in hand; pass an explicit
    /// [`crate::ParaHashConfigBuilder::sizing`] instead.
    ///
    /// # Errors
    ///
    /// Propagates parse failures and any step failure.
    pub fn run_fastq_streaming(&self, path: impl AsRef<Path>) -> Result<RunOutcome> {
        let io = ThrottledIo::with_retry(self.config.io_mode, self.config.retry);
        let started = Instant::now();
        let (manifest, step1) = crate::run_step1_fastq(&self.config, path, &io)?;
        let (graph, step2) = run_step2(&self.config, &manifest, &io)?;
        let total_elapsed = started.elapsed();
        let report = RunReport {
            peak_host_bytes: graph.approx_bytes() as u64
                + step1
                    .peak_partition_bytes
                    .max(step2.peak_partition_bytes + step2.peak_table_bytes),
            partition_bytes: manifest.total_bytes(),
            distinct_vertices: graph.distinct_vertices(),
            total_kmers: graph.total_kmer_occurrences(),
            step1,
            step2,
            total_elapsed,
        };
        Ok(RunOutcome { graph, report })
    }

    /// Parses a FASTQ file and runs construction on its reads.
    ///
    /// # Errors
    ///
    /// Propagates parse failures and any step failure.
    pub fn run_fastq(&self, path: impl AsRef<Path>) -> Result<RunOutcome> {
        let reader = FastqReader::new(BufReader::new(File::open(path)?));
        let reads = reader.collect::<std::result::Result<Vec<_>, _>>().map_err(|e| match e {
            dna::DnaError::Io(io) => crate::ParaHashError::Io(io),
            other => crate::ParaHashError::InvalidConfig(format!("bad fastq input: {other}")),
        })?;
        self.run(&reads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipeline::IoMode;

    fn reads() -> Vec<SeqRead> {
        vec![
            SeqRead::from_ascii("a", b"ACGTTGCATGGACCAGTTACGGATCAGGCATT"),
            SeqRead::from_ascii("b", b"TGATGGATGATGGATGGTAGCATACGTTGCAT"),
            SeqRead::from_ascii("c", b"GGCATTAGCCAGTACGGATCACCGTATGCAAT"),
            SeqRead::from_ascii("d", b"ACGTTGCATGGACCAGTTACGGATCAGGCATT"),
        ]
    }

    fn runner(dir: &str, io: IoMode) -> ParaHash {
        let cfg = ParaHashConfig::builder()
            .k(9)
            .p(5)
            .partitions(5)
            .cpu_threads(2)
            .io_mode(io)
            .work_dir(std::env::temp_dir().join(dir))
            .build()
            .unwrap();
        let _ = std::fs::remove_dir_all(cfg.work_dir());
        ParaHash::new(cfg).unwrap()
    }

    #[test]
    fn end_to_end_counts_are_consistent() {
        let ph = runner("parahash-sys-e2e", IoMode::Unthrottled);
        let rs = reads();
        let outcome = ph.run(&rs).unwrap();
        let expected_kmers: u64 = rs.iter().map(|r| (r.len() - 9 + 1) as u64).sum();
        assert_eq!(outcome.graph.total_kmer_occurrences(), expected_kmers);
        assert_eq!(outcome.report.total_kmers, expected_kmers);
        assert_eq!(outcome.report.distinct_vertices, outcome.graph.distinct_vertices());
        assert!(outcome.report.duplicate_vertices() > 0, "read d duplicates read a");
        assert!(outcome.report.partition_bytes > 0);
        assert!(outcome.report.total_elapsed >= outcome.report.steps_elapsed());
        assert!(outcome.report.summary().contains("distinct"));
        std::fs::remove_dir_all(ph.config().work_dir()).unwrap();
    }

    #[test]
    fn throttled_run_produces_identical_graph() {
        let fast = runner("parahash-sys-fast", IoMode::Unthrottled);
        let slow = runner("parahash-sys-slow", IoMode::Throttled { bytes_per_sec: 200_000 });
        let rs = reads();
        let a = fast.run(&rs).unwrap();
        let b = slow.run(&rs).unwrap();
        assert_eq!(a.graph, b.graph, "I/O regime must not change the result");
        std::fs::remove_dir_all(fast.config().work_dir()).unwrap();
        std::fs::remove_dir_all(slow.config().work_dir()).unwrap();
    }

    #[test]
    fn run_fastq_roundtrip() {
        let ph = runner("parahash-sys-fastq", IoMode::Unthrottled);
        let path = std::env::temp_dir().join("parahash-sys-input.fastq");
        {
            let mut w = dna::FastqWriter::new(std::fs::File::create(&path).unwrap());
            for r in reads() {
                w.write_record(&r).unwrap();
            }
            w.into_inner().unwrap().sync_all().unwrap();
        }
        let via_file = ph.run_fastq(&path).unwrap();
        let via_mem = ph.run(&reads()).unwrap();
        assert_eq!(via_file.graph, via_mem.graph);
        std::fs::remove_file(path).unwrap();
        std::fs::remove_dir_all(ph.config().work_dir()).unwrap();
    }

    #[test]
    fn streaming_fastq_matches_in_memory() {
        let ph = runner("parahash-sys-stream", IoMode::Unthrottled);
        let path = std::env::temp_dir().join(format!("parahash-stream-{}.fastq", std::process::id()));
        {
            let mut w = dna::FastqWriter::new(std::fs::File::create(&path).unwrap());
            for r in reads() {
                w.write_record(&r).unwrap();
            }
            w.into_inner().unwrap().sync_all().unwrap();
        }
        let streamed = ph.run_fastq_streaming(&path).unwrap();
        let in_memory = ph.run(&reads()).unwrap();
        assert_eq!(streamed.graph, in_memory.graph);
        assert_eq!(
            streamed.report.step1.pipeline.total_work(),
            reads().len() as u64,
            "every read must flow through the streaming input stage"
        );
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_dir_all(ph.config().work_dir()).unwrap();
    }

    #[test]
    fn streaming_small_batches_use_many_input_partitions() {
        // Tiny batch size forces several pipeline input partitions.
        let cfg = ParaHashConfig::builder()
            .k(9)
            .p(5)
            .partitions(4)
            .read_batch_bytes(24)
            .work_dir(std::env::temp_dir().join("parahash-sys-smallbatch"))
            .build()
            .unwrap();
        let _ = std::fs::remove_dir_all(cfg.work_dir());
        let ph = ParaHash::new(cfg).unwrap();
        let path = std::env::temp_dir().join(format!("parahash-smallbatch-{}.fastq", std::process::id()));
        {
            let mut w = dna::FastqWriter::new(std::fs::File::create(&path).unwrap());
            for r in reads() {
                w.write_record(&r).unwrap();
            }
            w.into_inner().unwrap().sync_all().unwrap();
        }
        let outcome = ph.run_fastq_streaming(&path).unwrap();
        assert!(outcome.report.step1.pipeline.partitions >= 3, "expected several input batches");
        assert_eq!(outcome.graph, ph.run(&reads()).unwrap().graph);
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_dir_all(ph.config().work_dir()).unwrap();
    }

    #[test]
    fn streaming_malformed_fastq_is_rejected() {
        let ph = runner("parahash-sys-streambad", IoMode::Unthrottled);
        let path = std::env::temp_dir().join(format!("parahash-streambad-{}.fastq", std::process::id()));
        std::fs::write(&path, "@ok\nACGTACGTACGT\n+\nIIIIIIIIIIII\nnot-a-header\n").unwrap();
        assert!(ph.run_fastq_streaming(&path).is_err());
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_dir_all(ph.config().work_dir()).unwrap();
    }

    #[test]
    fn missing_fastq_is_io_error() {
        let ph = runner("parahash-sys-missing", IoMode::Unthrottled);
        assert!(matches!(
            ph.run_fastq("/no/such/file.fastq"),
            Err(crate::ParaHashError::Io(_))
        ));
        std::fs::remove_dir_all(ph.config().work_dir()).unwrap();
    }

    #[test]
    fn auto_sizing_estimates_lambda_from_quality() {
        // High-quality reads (tiny λ) with auto-sizing still build the
        // correct graph; low-quality reads do too (bigger tables).
        let mk = |q: u8| -> Vec<SeqRead> {
            reads()
                .into_iter()
                .map(|r| {
                    let l = r.len();
                    let id = r.id().to_owned();
                    SeqRead::new(id, r.into_seq())
                        .with_quality(vec![dna::quality::phred_char(q); l])
                })
                .collect()
        };
        for q in [2u8, 40u8] {
            let cfg = ParaHashConfig::builder()
                .k(9)
                .p(5)
                .partitions(4)
                .auto_sizing(16)
                .work_dir(std::env::temp_dir().join(format!("parahash-sys-auto-{q}")))
                .build()
                .unwrap();
            let _ = std::fs::remove_dir_all(cfg.work_dir());
            let ph = ParaHash::new(cfg).unwrap();
            let outcome = ph.run(&mk(q)).unwrap();
            assert_eq!(outcome.report.total_kmers, 4 * (32 - 9 + 1));
            std::fs::remove_dir_all(ph.config().work_dir()).unwrap();
        }
    }

    #[test]
    fn empty_input_builds_empty_graph() {
        let ph = runner("parahash-sys-empty", IoMode::Unthrottled);
        let outcome = ph.run(&[]).unwrap();
        assert_eq!(outcome.graph.distinct_vertices(), 0);
        assert_eq!(outcome.report.total_kmers, 0);
        std::fs::remove_dir_all(ph.config().work_dir()).unwrap();
    }
}
