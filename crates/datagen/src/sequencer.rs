use dna::{Base, PackedSeq, SeqRead};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for the read simulator.
///
/// Defaults mirror a generic short-read run: 100 bp reads, 30× coverage,
/// λ = 1 error per read, both strands sampled.
#[derive(Debug, Clone)]
pub struct SequencingSpec {
    /// Read length `L` in base pairs.
    pub read_len: usize,
    /// Target coverage `c`; the simulator emits `N = ⌊c·Ge/L⌋` reads.
    pub coverage: f64,
    /// Average number of sequencing errors per read. Error counts are
    /// sampled per read from a Poisson(λ) distribution — exactly the model
    /// behind the paper's Property 1 (expected distinct vertices
    /// `Θ(λ/4·LN + Ge)`).
    pub lambda: f64,
    /// Probability that a read is taken from the reverse strand. The
    /// canonical-kmer machinery only gets exercised when this is non-zero.
    pub reverse_strand_prob: f64,
    /// RNG seed; simulation is fully deterministic per seed.
    pub seed: u64,
}

impl Default for SequencingSpec {
    fn default() -> SequencingSpec {
        SequencingSpec {
            read_len: 100,
            coverage: 30.0,
            lambda: 1.0,
            reverse_strand_prob: 0.5,
            seed: 0,
        }
    }
}

/// Illumina-like read simulator over a reference genome.
///
/// # Examples
///
/// ```
/// use datagen::{GenomeSpec, Sequencer, SequencingSpec};
///
/// let genome = GenomeSpec::new(2_000).seed(1).generate();
/// let spec = SequencingSpec { read_len: 50, coverage: 10.0, seed: 1, ..Default::default() };
/// let reads = Sequencer::new(spec).sequence(&genome);
/// assert_eq!(reads.len(), 400); // 10 × 2000 / 50
/// ```
#[derive(Debug, Clone)]
pub struct Sequencer {
    spec: SequencingSpec,
}

impl Sequencer {
    /// Creates a simulator with the given parameters.
    pub fn new(spec: SequencingSpec) -> Sequencer {
        Sequencer { spec }
    }

    /// The configured parameters.
    pub fn spec(&self) -> &SequencingSpec {
        &self.spec
    }

    /// Number of reads that [`Sequencer::sequence`] will produce for a
    /// genome of `genome_len` base pairs.
    pub fn read_count(&self, genome_len: usize) -> usize {
        if self.spec.read_len == 0 || genome_len < self.spec.read_len {
            return 0;
        }
        ((self.spec.coverage * genome_len as f64) / self.spec.read_len as f64) as usize
    }

    /// Simulates a full read set over `genome`.
    ///
    /// Each read starts at a uniform position, may come from either strand,
    /// and receives `Poisson(λ)` substitution errors at uniform positions
    /// (an erroneous base is replaced by a *different* uniform base, so
    /// every injected error really changes the read).
    pub fn sequence(&self, genome: &PackedSeq) -> Vec<SeqRead> {
        let n = self.read_count(genome.len());
        let mut rng = StdRng::seed_from_u64(self.spec.seed ^ 0x5EC_0DE5);
        let mut reads = Vec::with_capacity(n);
        for i in 0..n {
            reads.push(self.one_read(genome, i, &mut rng));
        }
        reads
    }

    /// Streaming variant of [`Sequencer::sequence`]: calls `sink` once per
    /// read without materialising the whole read set. Useful when writing
    /// large FASTQ files.
    pub fn sequence_into<F>(&self, genome: &PackedSeq, mut sink: F)
    where
        F: FnMut(SeqRead),
    {
        let n = self.read_count(genome.len());
        let mut rng = StdRng::seed_from_u64(self.spec.seed ^ 0x5EC_0DE5);
        for i in 0..n {
            sink(self.one_read(genome, i, &mut rng));
        }
    }

    fn one_read(&self, genome: &PackedSeq, index: usize, rng: &mut StdRng) -> SeqRead {
        let l = self.spec.read_len;
        let start = rng.gen_range(0..=genome.len() - l);
        let mut seq = genome.slice(start, l);
        if self.spec.reverse_strand_prob > 0.0 && rng.gen_bool(self.spec.reverse_strand_prob) {
            seq = seq.revcomp();
        }
        let errors = sample_poisson(self.spec.lambda, rng);
        if errors > 0 {
            let mut bases: Vec<Base> = seq.bases().collect();
            for _ in 0..errors {
                let pos = rng.gen_range(0..l);
                let old = bases[pos];
                let new = Base::from_code((old.code() + rng.gen_range(1..4u8)) & 3);
                bases[pos] = new;
            }
            seq = bases.into_iter().collect();
        }
        // Quality consistent with the error model: per-base error
        // probability λ/L, so Property-1 consumers can recover λ from the
        // FASTQ (dna::quality::estimate_lambda).
        let q = dna::quality::score_for_probability(self.spec.lambda / l as f64);
        SeqRead::new(format!("sim.{index}"), seq)
            .with_quality(vec![dna::quality::phred_char(q); l])
    }
}

/// Samples a Poisson(λ)-distributed count with Knuth's multiplication
/// method, adequate for the small λ (1–2) the paper cites from short-read
/// error-rate studies.
fn sample_poisson(lambda: f64, rng: &mut StdRng) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        // λ is small here; guard against pathological inputs anyway.
        if k > 10_000 {
            return k;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GenomeSpec;

    fn genome(len: usize) -> PackedSeq {
        GenomeSpec::new(len).seed(11).generate()
    }

    #[test]
    fn read_count_formula() {
        let s = Sequencer::new(SequencingSpec { read_len: 100, coverage: 30.0, ..Default::default() });
        assert_eq!(s.read_count(10_000), 3000);
        assert_eq!(s.read_count(50), 0, "genome shorter than a read");
    }

    #[test]
    fn reads_are_deterministic_per_seed() {
        let g = genome(3000);
        let spec = SequencingSpec { read_len: 80, coverage: 3.0, seed: 5, ..Default::default() };
        let a = Sequencer::new(spec.clone()).sequence(&g);
        let b = Sequencer::new(spec).sequence(&g);
        assert_eq!(a, b);
    }

    #[test]
    fn error_free_reads_match_genome_or_revcomp() {
        let g = genome(2000);
        let spec = SequencingSpec {
            read_len: 60,
            coverage: 5.0,
            lambda: 0.0,
            seed: 3,
            ..Default::default()
        };
        let reads = Sequencer::new(spec).sequence(&g);
        let text = g.to_string();
        for r in &reads {
            let fwd = r.seq().to_string();
            let rev = r.seq().revcomp().to_string();
            assert!(
                text.contains(&fwd) || text.contains(&rev),
                "error-free read must be a substring of a strand"
            );
        }
    }

    #[test]
    fn lambda_controls_average_error_count() {
        let g = genome(5000);
        let count_mismatches = |lambda: f64| -> usize {
            let spec = SequencingSpec {
                read_len: 100,
                coverage: 20.0,
                lambda,
                reverse_strand_prob: 0.0,
                seed: 8,
            };
            let reads = Sequencer::new(spec).sequence(&g);
            let text = g.to_string();
            reads.iter().filter(|r| !text.contains(&r.seq().to_string())).count()
        };
        // With λ=2 nearly every read is erroneous; with λ=0 none are.
        assert_eq!(count_mismatches(0.0), 0);
        let errs = count_mismatches(2.0);
        assert!(errs > 500, "λ=2 should corrupt most of the 1000 reads, got {errs}");
    }

    #[test]
    fn sequence_into_matches_sequence() {
        let g = genome(1500);
        let spec = SequencingSpec { read_len: 70, coverage: 4.0, seed: 2, ..Default::default() };
        let direct = Sequencer::new(spec.clone()).sequence(&g);
        let mut streamed = Vec::new();
        Sequencer::new(spec).sequence_into(&g, |r| streamed.push(r));
        assert_eq!(direct, streamed);
    }

    #[test]
    fn quality_strings_encode_lambda() {
        let g = genome(4000);
        for lambda in [0.5, 1.0, 2.0] {
            let spec = SequencingSpec { read_len: 100, coverage: 3.0, lambda, seed: 6, ..Default::default() };
            let reads = Sequencer::new(spec).sequence(&g);
            assert!(reads.iter().all(|r| r.quality().is_some()));
            let est = dna::quality::estimate_lambda(&reads, 50).unwrap();
            // Phred rounding quantises the per-base probability.
            assert!(
                (est - lambda).abs() / lambda < 0.2,
                "λ={lambda}, estimated {est}"
            );
        }
    }

    #[test]
    fn poisson_mean_is_close_to_lambda() {
        let mut rng = StdRng::seed_from_u64(99);
        let n = 20_000;
        for lambda in [0.5, 1.0, 2.0] {
            let total: usize = (0..n).map(|_| sample_poisson(lambda, &mut rng)).sum();
            let mean = total as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < 0.05 * lambda.max(1.0),
                "poisson mean {mean} too far from λ={lambda}"
            );
        }
        assert_eq!(sample_poisson(0.0, &mut rng), 0);
        assert_eq!(sample_poisson(-1.0, &mut rng), 0);
    }
}
