//! Synthetic genome and read-set generation.
//!
//! The paper evaluates on two GAGE datasets (Human Chr14, 9.4 GB fastq, and
//! Bumblebee, 92 GB fastq) that are impractical to ship or to process in a
//! test environment. This crate is the documented substitution (see
//! `DESIGN.md` §2): a seeded random genome plus an Illumina-like *read
//! simulator* whose knobs — genome size `Ge`, read length `L`, coverage
//! `c = LN/Ge`, and average errors per read `λ` (Poisson, following the
//! paper's Property 1 model) — reproduce the *ratios* the evaluation
//! depends on at any scale.
//!
//! # Examples
//!
//! ```
//! use datagen::{GenomeSpec, Sequencer, SequencingSpec};
//!
//! let genome = GenomeSpec::new(10_000).seed(7).generate();
//! assert_eq!(genome.len(), 10_000);
//!
//! let reads = Sequencer::new(SequencingSpec {
//!     read_len: 100,
//!     coverage: 5.0,
//!     lambda: 1.0,
//!     seed: 7,
//!     ..Default::default()
//! })
//! .sequence(&genome);
//! // N = c·Ge/L reads
//! assert_eq!(reads.len(), 500);
//! assert!(reads.iter().all(|r| r.len() == 100));
//! ```

mod genome;
mod profiles;
mod sequencer;

pub use genome::GenomeSpec;
pub use profiles::{DatasetProfile, ProfileData};
pub use sequencer::{Sequencer, SequencingSpec};
