use dna::{Base, PackedSeq};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builder for a seeded synthetic genome.
///
/// A genome is a uniform random base sequence with an optional fraction of
/// *repeats*: segments copied from earlier positions, which real genomes
/// have in abundance and which create the duplicate-vertex structure the
/// De Bruijn graph construction has to merge.
///
/// # Examples
///
/// ```
/// use datagen::GenomeSpec;
///
/// let g = GenomeSpec::new(5_000).seed(42).repeat_fraction(0.1).generate();
/// assert_eq!(g.len(), 5_000);
/// // Deterministic for a given seed:
/// assert_eq!(g, GenomeSpec::new(5_000).seed(42).repeat_fraction(0.1).generate());
/// ```
#[derive(Debug, Clone)]
pub struct GenomeSpec {
    len: usize,
    seed: u64,
    repeat_fraction: f64,
    repeat_len: usize,
}

impl GenomeSpec {
    /// A genome of `len` base pairs, seed 0, no repeats.
    pub fn new(len: usize) -> GenomeSpec {
        GenomeSpec { len, seed: 0, repeat_fraction: 0.0, repeat_len: 500 }
    }

    /// Sets the RNG seed (generation is fully deterministic per seed).
    pub fn seed(mut self, seed: u64) -> GenomeSpec {
        self.seed = seed;
        self
    }

    /// Sets the approximate fraction of the genome covered by repeated
    /// segments (clamped to `0.0..=0.9`).
    pub fn repeat_fraction(mut self, fraction: f64) -> GenomeSpec {
        self.repeat_fraction = fraction.clamp(0.0, 0.9);
        self
    }

    /// Sets the length of each repeated segment (minimum 10).
    pub fn repeat_len(mut self, len: usize) -> GenomeSpec {
        self.repeat_len = len.max(10);
        self
    }

    /// Generates the genome.
    pub fn generate(&self) -> PackedSeq {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xC0FF_EE00);
        let mut out = PackedSeq::with_capacity(self.len);
        while out.len() < self.len {
            let room = self.len - out.len();
            let take_repeat = self.repeat_fraction > 0.0
                && out.len() > self.repeat_len
                && rng.gen_bool(self.repeat_fraction);
            if take_repeat {
                let seg = self.repeat_len.min(room);
                let src = rng.gen_range(0..out.len() - seg.min(out.len() - 1));
                // Copy base-by-base; `out` grows as we go, so snapshot indices.
                for i in 0..seg {
                    let b = out.base(src + i);
                    out.push(b);
                }
            } else {
                let fresh = (self.repeat_len.max(64)).min(room);
                for _ in 0..fresh {
                    out.push(Base::from_code(rng.gen_range(0..4u8)));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_exact_length() {
        for len in [0, 1, 63, 64, 65, 1000] {
            assert_eq!(GenomeSpec::new(len).generate().len(), len);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = GenomeSpec::new(2000).seed(1).generate();
        let b = GenomeSpec::new(2000).seed(1).generate();
        let c = GenomeSpec::new(2000).seed(2).generate();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn uses_all_four_bases() {
        let g = GenomeSpec::new(4000).seed(3).generate();
        let mut seen = [false; 4];
        for b in g.bases() {
            seen[b.code() as usize] = true;
        }
        assert_eq!(seen, [true; 4]);
    }

    #[test]
    fn repeats_increase_duplicate_kmers() {
        let k = 21;
        let distinct = |g: &PackedSeq| {
            let mut set = std::collections::HashSet::new();
            for kmer in g.kmers(k) {
                set.insert(kmer);
            }
            set.len()
        };
        let plain = GenomeSpec::new(20_000).seed(9).generate();
        let repetitive = GenomeSpec::new(20_000).seed(9).repeat_fraction(0.5).repeat_len(200).generate();
        assert!(
            distinct(&repetitive) < distinct(&plain),
            "repeat-rich genome should have fewer distinct kmers ({} vs {})",
            distinct(&repetitive),
            distinct(&plain)
        );
    }

    #[test]
    fn repeat_fraction_is_clamped() {
        // Would loop forever or panic if 1.0 were accepted verbatim.
        let g = GenomeSpec::new(3000).seed(4).repeat_fraction(5.0).generate();
        assert_eq!(g.len(), 3000);
    }
}
