use dna::{PackedSeq, SeqRead};

use crate::{GenomeSpec, Sequencer, SequencingSpec};

/// A named dataset recipe mirroring one of the paper's evaluation inputs.
///
/// The paper's Table I datasets (GAGE Human Chr14 and Bumblebee) are
/// reproduced as *scaled* profiles: the read length `L`, coverage
/// `c = LN/Ge`, error rate λ and repeat structure match the originals, while
/// the genome size is shrunk by a configurable factor so experiments run on
/// a development machine. `scale(1.0)` would regenerate paper-size inputs.
///
/// # Examples
///
/// ```
/// use datagen::DatasetProfile;
///
/// let data = DatasetProfile::human_chr14_mini().materialize();
/// assert_eq!(data.profile.read_len, 101);
/// assert!(!data.reads.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct DatasetProfile {
    /// Human-readable dataset name.
    pub name: &'static str,
    /// Genome size `Ge` in base pairs after scaling.
    pub genome_size: usize,
    /// Read length `L` in base pairs (matches the paper's dataset).
    pub read_len: usize,
    /// Coverage `c = LN/Ge` (matches the paper's dataset).
    pub coverage: f64,
    /// Average sequencing errors per read. The paper *sizes tables* with
    /// λ ∈ {1, 2}, but its measured Table-I distinct:duplicate ratios
    /// (~1:6) imply a lower effective per-read error yield; profiles use
    /// the λ that reproduces the measured ratio, since that ratio drives
    /// the contention behaviour (§III-C) the evaluation depends on.
    pub lambda: f64,
    /// Fraction of the genome covered by repeats.
    pub repeat_fraction: f64,
    /// RNG seed for genome + reads.
    pub seed: u64,
}

impl DatasetProfile {
    /// Scaled stand-in for GAGE **Human Chr14**: the paper's medium dataset
    /// (Ge = 88 Mbp, L = 101, N = 37 M reads ⇒ c ≈ 42×), shrunk 1000×
    /// by default.
    pub fn human_chr14_mini() -> DatasetProfile {
        DatasetProfile {
            name: "human-chr14-mini",
            genome_size: 88_000,
            read_len: 101,
            coverage: 42.0,
            lambda: 0.35,
            repeat_fraction: 0.05,
            seed: 14,
        }
    }

    /// Scaled stand-in for GAGE **Bumblebee**: the paper's big dataset
    /// (Ge = 250 Mbp, L = 124, N = 303 M reads ⇒ c ≈ 150×), shrunk 1000×
    /// by default. Its ~3.6× larger volume relative to `human_chr14_mini`
    /// preserves the medium-vs-big contrast the evaluation relies on.
    pub fn bumblebee_mini() -> DatasetProfile {
        DatasetProfile {
            name: "bumblebee-mini",
            genome_size: 250_000,
            read_len: 124,
            coverage: 60.0,
            lambda: 0.45,
            repeat_fraction: 0.08,
            seed: 92,
        }
    }

    /// A tiny profile for unit tests: runs in milliseconds.
    pub fn tiny() -> DatasetProfile {
        DatasetProfile {
            name: "tiny",
            genome_size: 2_000,
            read_len: 60,
            coverage: 8.0,
            lambda: 0.5,
            repeat_fraction: 0.0,
            seed: 7,
        }
    }

    /// Multiplies the genome size by `factor` (reads scale with it through
    /// the fixed coverage), e.g. `scale(10.0)` for a 10× bigger run.
    pub fn scale(mut self, factor: f64) -> DatasetProfile {
        self.genome_size = ((self.genome_size as f64) * factor).max(1.0) as usize;
        self
    }

    /// Number of reads this profile will generate.
    pub fn read_count(&self) -> usize {
        Sequencer::new(self.sequencing_spec()).read_count(self.genome_size)
    }

    /// Total base pairs across all reads (`≈ c·Ge`).
    pub fn total_bases(&self) -> usize {
        self.read_count() * self.read_len
    }

    fn sequencing_spec(&self) -> SequencingSpec {
        SequencingSpec {
            read_len: self.read_len,
            coverage: self.coverage,
            lambda: self.lambda,
            reverse_strand_prob: 0.5,
            seed: self.seed,
        }
    }

    /// Generates the genome and the full read set.
    pub fn materialize(&self) -> ProfileData {
        let genome = GenomeSpec::new(self.genome_size)
            .seed(self.seed)
            .repeat_fraction(self.repeat_fraction)
            .generate();
        let reads = Sequencer::new(self.sequencing_spec()).sequence(&genome);
        ProfileData { profile: self.clone(), genome, reads }
    }
}

/// A materialized dataset: the reference genome plus simulated reads.
#[derive(Debug, Clone)]
pub struct ProfileData {
    /// The recipe this data was generated from.
    pub profile: DatasetProfile,
    /// The reference genome.
    pub genome: PackedSeq,
    /// The simulated read set.
    pub reads: Vec<SeqRead>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_have_paper_ratios() {
        let h = DatasetProfile::human_chr14_mini();
        assert_eq!(h.read_len, 101);
        let b = DatasetProfile::bumblebee_mini();
        assert_eq!(b.read_len, 124);
        assert!(b.genome_size > h.genome_size * 2, "bumblebee must stay the big dataset");
        assert!(b.total_bases() > 2 * h.total_bases());
    }

    #[test]
    fn scale_changes_genome_and_read_count() {
        let base = DatasetProfile::tiny();
        let double = base.clone().scale(2.0);
        assert_eq!(double.genome_size, base.genome_size * 2);
        assert!((double.read_count() as f64 / base.read_count() as f64 - 2.0).abs() < 0.1);
    }

    #[test]
    fn materialize_is_consistent() {
        let data = DatasetProfile::tiny().materialize();
        assert_eq!(data.genome.len(), data.profile.genome_size);
        assert_eq!(data.reads.len(), data.profile.read_count());
        assert!(data.reads.iter().all(|r| r.len() == data.profile.read_len));
    }

    #[test]
    fn materialize_is_deterministic() {
        let a = DatasetProfile::tiny().materialize();
        let b = DatasetProfile::tiny().materialize();
        assert_eq!(a.genome, b.genome);
        assert_eq!(a.reads, b.reads);
    }
}
